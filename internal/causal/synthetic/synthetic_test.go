package synthetic

import (
	"context"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"sisyphus/internal/mathx"
)

// factorPanel builds a panel driven by a low-rank latent factor model:
// y_it = load_i · factor_t + noise, plus `effect` added to the treated
// unit's post periods. This is exactly the setting synthetic control is
// designed for (donors share the latent factors).
func factorPanel(seed uint64, nUnits, nTimes, t0 int, effect, noise float64) *Panel {
	r := mathx.NewRNG(seed)
	nFactors := 3
	loads := mathx.NewMatrix(nUnits, nFactors)
	for i := range loads.Data {
		loads.Data[i] = 0.5 + r.Float64()
	}
	// Make the treated unit (row 0) a convex combination of the donors so
	// it lies inside their hull — the regime classic SC is designed for.
	wsum := 0.0
	w := make([]float64, nUnits-1)
	for i := range w {
		w[i] = r.Float64()
		wsum += w[i]
	}
	for k := 0; k < nFactors; k++ {
		var v float64
		for i := 1; i < nUnits; i++ {
			v += w[i-1] / wsum * loads.At(i, k)
		}
		loads.Set(0, k, v)
	}
	factors := mathx.NewMatrix(nFactors, nTimes)
	for k := 0; k < nFactors; k++ {
		level := 20 + 10*r.Float64()
		for t := 0; t < nTimes; t++ {
			// Stationary diurnal-ish factor.
			factors.Set(k, t, level+3*math.Sin(float64(t)/4+float64(k))+r.Normal(0, 0.3))
		}
	}
	y := loads.Mul(factors)
	for i := range y.Data {
		y.Data[i] += r.Normal(0, noise)
	}
	// Unit 0 is treated.
	for t := t0; t < nTimes; t++ {
		y.Set(0, t, y.At(0, t)+effect)
	}
	units := make([]string, nUnits)
	for i := range units {
		units[i] = string(rune('a' + i))
	}
	times := make([]float64, nTimes)
	for t := range times {
		times[t] = float64(t)
	}
	p, err := NewPanel(units, times, y)
	if err != nil {
		panic(err)
	}
	return p
}

func TestNewPanelValidation(t *testing.T) {
	y := mathx.NewMatrix(2, 3)
	if _, err := NewPanel([]string{"a"}, []float64{0, 1, 2}, y); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := NewPanel([]string{"a", "a"}, []float64{0, 1, 2}, y); err == nil {
		t.Fatal("duplicate unit accepted")
	}
	y1 := mathx.NewMatrix(1, 3)
	if _, err := NewPanel([]string{"a"}, []float64{0, 1, 2}, y1); err == nil {
		t.Fatal("single-unit panel accepted")
	}
}

func TestClassicRecoversEffect(t *testing.T) {
	p := factorPanel(1, 12, 60, 40, -5, 0.3)
	res, err := Fit(p, "a", 40, Config{Method: Classic})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ATT-(-5)) > 1 {
		t.Fatalf("classic ATT = %v want ≈ -5", res.ATT)
	}
	if res.PreRMSE > 2 {
		t.Fatalf("poor pre fit: %v", res.PreRMSE)
	}
	if res.RMSERatio < 2 {
		t.Fatalf("treated unit should diverge post: ratio = %v", res.RMSERatio)
	}
}

func TestRobustRecoversEffectUnderNoise(t *testing.T) {
	p := factorPanel(2, 12, 60, 40, -5, 2.0)
	res, err := Fit(p, "a", 40, Config{Method: Robust})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ATT-(-5)) > 1.5 {
		t.Fatalf("robust ATT = %v want ≈ -5", res.ATT)
	}
}

func TestNullEffectGivesSmallATT(t *testing.T) {
	for _, m := range []Method{Classic, Robust} {
		p := factorPanel(3, 12, 60, 40, 0, 0.5)
		res, err := Fit(p, "a", 40, Config{Method: m})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.ATT) > 1 {
			t.Fatalf("%v ATT under null = %v want ≈ 0", m, res.ATT)
		}
	}
}

func TestClassicWeightsOnSimplex(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		p := factorPanel(seed, 4+r.Intn(10), 30, 20, r.Normal(0, 3), 0.5)
		res, err := Fit(p, "a", 20, Config{Method: Classic})
		if err != nil {
			return false
		}
		var sum float64
		for _, w := range res.Weights {
			if w < -1e-9 || w > 1+1e-9 {
				return false
			}
			sum += w
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRobustBeatsClassicUnderHeavyNoise(t *testing.T) {
	// Average absolute ATT error across seeds under noisy donors: the
	// SVD denoising should help (this is the DESIGN.md ablation).
	var errClassic, errRobust float64
	const trials = 8
	for s := uint64(0); s < trials; s++ {
		p := factorPanel(100+s, 10, 80, 60, -4, 3.0)
		rc, err := Fit(p, "a", 60, Config{Method: Classic})
		if err != nil {
			t.Fatal(err)
		}
		rr, err := Fit(p, "a", 60, Config{Method: Robust})
		if err != nil {
			t.Fatal(err)
		}
		errClassic += math.Abs(rc.ATT - (-4))
		errRobust += math.Abs(rr.ATT - (-4))
	}
	t.Logf("mean |ATT error|: classic=%.3f robust=%.3f", errClassic/trials, errRobust/trials)
	if errRobust > errClassic*1.5 {
		t.Fatalf("robust (%.3f) much worse than classic (%.3f) under noise", errRobust/trials, errClassic/trials)
	}
}

func TestFitErrors(t *testing.T) {
	p := factorPanel(4, 6, 20, 10, 0, 0.5)
	if _, err := Fit(p, "zzz", 10, Config{}); err == nil {
		t.Fatal("unknown unit accepted")
	}
	if _, err := Fit(p, "a", 2, Config{}); err == nil {
		t.Fatal("too few pre periods accepted")
	}
	if _, err := Fit(p, "a", 20, Config{}); err == nil {
		t.Fatal("no post periods accepted")
	}
	if _, err := Fit(p, "a", 10, Config{Method: Method(99)}); err == nil {
		t.Fatal("bogus method accepted")
	}
}

func TestPlaceboPValueSignificantForLargeEffect(t *testing.T) {
	p := factorPanel(5, 20, 80, 60, -8, 0.3)
	pr, err := PlaceboTest(context.Background(), p, "a", 60, Config{Method: Classic})
	if err != nil {
		t.Fatal(err)
	}
	// 19 placebos + treated = 20 units; the treated ratio should rank top:
	// p = 1/20 = 0.05.
	if pr.PValue > 0.11 {
		t.Fatalf("placebo p = %v for a huge effect", pr.PValue)
	}
	if len(pr.Ratios) != 19 {
		t.Fatalf("placebo count = %d", len(pr.Ratios))
	}
}

func TestPlaceboPValueLargeUnderNull(t *testing.T) {
	p := factorPanel(6, 16, 80, 60, 0, 0.5)
	pr, err := PlaceboTest(context.Background(), p, "a", 60, Config{Method: Classic})
	if err != nil {
		t.Fatal(err)
	}
	if pr.PValue < 0.2 {
		t.Fatalf("placebo p = %v under the null; expected unremarkable rank", pr.PValue)
	}
}

func TestPlaceboPValueBounds(t *testing.T) {
	f := func(seed uint64) bool {
		p := factorPanel(seed, 8, 40, 30, 1, 0.8)
		pr, err := PlaceboTest(context.Background(), p, "a", 30, Config{Method: Classic})
		if err != nil {
			return true
		}
		return pr.PValue > 0 && pr.PValue <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPrePostTTestConflatesCommonShocks(t *testing.T) {
	// Add a common +6 shock to ALL units post-t0 and no treatment effect.
	p := factorPanel(7, 12, 60, 40, 0, 0.3)
	for i := 0; i < len(p.Units); i++ {
		for tt := 40; tt < 60; tt++ {
			p.Y.Set(i, tt, p.Y.At(i, tt)+6)
		}
	}
	delta, pval, err := PrePostTTest(p, "a", 40)
	if err != nil {
		t.Fatal(err)
	}
	if delta < 4 || pval > 0.01 {
		t.Fatalf("naive pre/post should falsely detect the common shock: delta=%v p=%v", delta, pval)
	}
	// Synthetic control is immune: donors absorb the common shock.
	res, err := Fit(p, "a", 40, Config{Method: Classic})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ATT) > 1 {
		t.Fatalf("SC should see no unit-specific effect, got ATT=%v", res.ATT)
	}
}

func TestTopWeights(t *testing.T) {
	p := factorPanel(8, 8, 40, 30, -3, 0.3)
	res, err := Fit(p, "a", 30, Config{Method: Classic})
	if err != nil {
		t.Fatal(err)
	}
	top := res.TopWeights(3)
	if len(top) != 3 {
		t.Fatalf("top = %v", top)
	}
	if math.Abs(top[0].Weight) < math.Abs(top[2].Weight) {
		t.Fatal("weights not sorted")
	}
	all := res.TopWeights(0)
	if len(all) != len(res.Donors) {
		t.Fatalf("all weights = %d want %d", len(all), len(res.Donors))
	}
}

func TestGapSeries(t *testing.T) {
	p := factorPanel(9, 10, 40, 30, -5, 0.2)
	res, err := Fit(p, "a", 30, Config{Method: Classic})
	if err != nil {
		t.Fatal(err)
	}
	gap := res.Gap()
	preGap := gap[:30]
	postGap := gap[30:]
	if math.Abs(mathx.Vector(preGap).Mean()) > 1 {
		t.Fatalf("pre gap should hover near zero: %v", mathx.Vector(preGap).Mean())
	}
	if mathx.Vector(postGap).Mean() > -3 {
		t.Fatalf("post gap should be ≈ -5: %v", mathx.Vector(postGap).Mean())
	}
}

func TestMethodString(t *testing.T) {
	if Classic.String() != "classic" || Robust.String() != "robust" {
		t.Fatal("method names")
	}
	if Method(9).String() == "" {
		t.Fatal("unknown method should still render")
	}
}

func TestJackknifeCICoversEffect(t *testing.T) {
	p := factorPanel(20, 14, 60, 40, -5, 0.5)
	ci, err := Jackknife(p, "a", 40, Config{Method: Classic}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// Jackknife measures donor-dependence: the interval brackets the point
	// ATT, and a tight interval here is correct (no single donor dominates).
	if ci.Lo > ci.ATT || ci.Hi < ci.ATT {
		t.Fatalf("jackknife CI [%v, %v] excludes its own ATT %v", ci.Lo, ci.Hi, ci.ATT)
	}
	if math.Abs(ci.ATT-(-5)) > 0.5 {
		t.Fatalf("ATT = %v want ≈ -5", ci.ATT)
	}
	if ci.SE <= 0 || ci.Hi-ci.Lo > 2 {
		t.Fatalf("se = %v, width = %v", ci.SE, ci.Hi-ci.Lo)
	}
	if len(ci.Replicas) < 10 {
		t.Fatalf("replicas = %d", len(ci.Replicas))
	}
}

func TestJackknifeErrors(t *testing.T) {
	p := factorPanel(21, 4, 40, 30, -3, 0.3)
	if _, err := Jackknife(p, "a", 30, Config{}, 1.5); err == nil {
		t.Fatal("bad level accepted")
	}
	small := factorPanel(22, 3, 40, 30, -3, 0.3)
	if _, err := Jackknife(small, "a", 30, Config{}, 0.95); err == nil {
		t.Fatal("two-donor jackknife accepted")
	}
}

func TestSparklineAndRender(t *testing.T) {
	if s := Sparkline(nil); s != "" {
		t.Fatalf("empty sparkline = %q", s)
	}
	if s := Sparkline([]float64{1, 1, 1}); len([]rune(s)) != 3 {
		t.Fatalf("flat sparkline = %q", s)
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Fatalf("ramp sparkline = %q", s)
	}
	p := factorPanel(30, 8, 40, 30, -5, 0.3)
	res, err := Fit(p, "a", 30, Config{Method: Classic})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, want := range []string{"unit a", "actual", "synthetic", "ATT", "top donors", "|"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestPlaceboInTimeFindsNothingForSoundDesign(t *testing.T) {
	p := factorPanel(31, 14, 80, 60, -6, 0.4)
	res, err := PlaceboInTime(p, "a", 60, 40, Config{Method: Classic})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ATT) > 0.8 {
		t.Fatalf("backdated ATT = %v; should be ≈ 0 before the real treatment", res.ATT)
	}
	// The real fit still finds the effect.
	real, err := Fit(p, "a", 60, Config{Method: Classic})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(real.ATT-(-6)) > 1 {
		t.Fatalf("real ATT = %v", real.ATT)
	}
	if _, err := PlaceboInTime(p, "a", 40, 60, Config{}); err == nil {
		t.Fatal("fake time after real time accepted")
	}
}
