// Package synthetic implements the synthetic control method the paper uses
// for its IXP case study: classic synthetic control (Abadie et al.) with
// simplex-constrained donor weights, and robust synthetic control
// (Amjad–Shah–Shen) which denoises the donor matrix by singular-value
// thresholding and fits ridge-regularized weights. It also implements the
// diagnostics reported in Table 1: the post/pre RMSE ratio and the
// placebo-based p-value.
package synthetic

import (
	"fmt"
	"sort"

	"sisyphus/internal/mathx"
	"sisyphus/internal/parallel"
)

// Panel is an outcome panel: one row per unit, one column per time period.
// Time periods are assumed ordered; treatment splits them at T0 (the first
// post-treatment column index of the treated unit).
type Panel struct {
	Units []string // unit names, len == rows of Y
	Times []float64
	Y     *mathx.Matrix // Units × Times outcome matrix
}

// NewPanel builds a panel, validating dimensions.
func NewPanel(units []string, times []float64, y *mathx.Matrix) (*Panel, error) {
	if y.Rows != len(units) || y.Cols != len(times) {
		return nil, fmt.Errorf("synthetic: Y is %dx%d but have %d units and %d times",
			y.Rows, y.Cols, len(units), len(times))
	}
	if len(units) < 2 {
		return nil, fmt.Errorf("synthetic: need at least one donor besides the treated unit")
	}
	seen := make(map[string]bool, len(units))
	for _, u := range units {
		if seen[u] {
			return nil, fmt.Errorf("synthetic: duplicate unit %q", u)
		}
		seen[u] = true
	}
	return &Panel{Units: units, Times: times, Y: y}, nil
}

// UnitIndex returns the row of the named unit.
func (p *Panel) UnitIndex(name string) (int, error) {
	for i, u := range p.Units {
		if u == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("synthetic: unknown unit %q", name)
}

// Method selects the estimator variant.
type Method int

const (
	// Classic is Abadie-style synthetic control: donor weights constrained
	// to the probability simplex, fit on pre-period outcomes.
	Classic Method = iota
	// Robust is Amjad–Shah–Shen robust synthetic control: the donor matrix
	// is denoised by hard singular-value thresholding and weights are fit by
	// ridge regression (unconstrained).
	Robust
)

func (m Method) String() string {
	switch m {
	case Classic:
		return "classic"
	case Robust:
		return "robust"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Config tunes the estimator.
type Config struct {
	Method Method
	// RidgeLambda is the ridge penalty for Robust; <= 0 uses a default of
	// 1e-2 scaled by the pre-period length.
	RidgeLambda float64
	// Rank forces the denoising rank for Robust. 0 selects automatically by
	// the universal singular-value threshold (2.858 × median singular value).
	Rank int
	// MaxIter bounds Frank–Wolfe iterations for Classic; 0 means 2000.
	MaxIter int
	// MinPre is the minimum number of pre-treatment periods required;
	// 0 means 4.
	MinPre int
	// Pool shards PlaceboTest's donor refits. The zero value is the default
	// pool; estimates are bit-identical at any width.
	Pool parallel.Pool
}

func (c Config) withDefaults() Config {
	if c.RidgeLambda <= 0 {
		c.RidgeLambda = 1e-2
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 2000
	}
	if c.MinPre <= 0 {
		c.MinPre = 4
	}
	return c
}

// Result is a fitted synthetic control for one treated unit.
type Result struct {
	Unit      string
	Donors    []string
	Weights   mathx.Vector // aligned with Donors
	Actual    mathx.Vector // full observed trajectory of the treated unit
	Synthetic mathx.Vector // full synthetic trajectory
	T0        int          // first post-treatment column

	PreRMSE   float64
	PostRMSE  float64
	RMSERatio float64 // PostRMSE / PreRMSE (paper's Table 1 diagnostic)

	// ATT is the average post-treatment gap actual − synthetic: the paper's
	// "estimated RTT change" (negative = latency drop after the IXP).
	ATT float64
	// MedianGap is the median post-treatment gap, more robust to single
	// post-period spikes.
	MedianGap float64
}

// Gap returns the actual − synthetic series.
func (r *Result) Gap() mathx.Vector {
	return r.Actual.Sub(r.Synthetic)
}

// TopWeights returns donors sorted by descending absolute weight, capped at
// k (k <= 0 returns all).
func (r *Result) TopWeights(k int) []struct {
	Donor  string
	Weight float64
} {
	type dw struct {
		Donor  string
		Weight float64
	}
	list := make([]dw, len(r.Donors))
	for i := range r.Donors {
		list[i] = dw{r.Donors[i], r.Weights[i]}
	}
	sort.Slice(list, func(i, j int) bool {
		ai, aj := list[i].Weight, list[j].Weight
		if ai < 0 {
			ai = -ai
		}
		if aj < 0 {
			aj = -aj
		}
		return ai > aj
	})
	if k > 0 && k < len(list) {
		list = list[:k]
	}
	out := make([]struct {
		Donor  string
		Weight float64
	}, len(list))
	for i, x := range list {
		out[i] = struct {
			Donor  string
			Weight float64
		}{x.Donor, x.Weight}
	}
	return out
}
