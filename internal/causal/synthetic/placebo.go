package synthetic

import (
	"context"
	"fmt"
	"math"
	"sort"

	"sisyphus/internal/mathx"
	"sisyphus/internal/obs"
	"sisyphus/internal/parallel"
)

// PlaceboResult carries the inference produced by in-space placebo tests,
// exactly the procedure behind Table 1's p column: refit the estimator
// pretending each untreated donor was treated at the same time, and rank the
// real unit's RMSE ratio among the placebo ratios.
type PlaceboResult struct {
	Treated *Result
	// Ratios holds each placebo unit's post/pre RMSE ratio.
	Ratios map[string]float64
	// PValue is the rank-based p-value: the fraction of units (placebos plus
	// the treated unit itself) whose RMSE ratio is at least the treated
	// unit's. Small values mean the treated unit's post-period divergence
	// would be unusual under "no effect anywhere".
	//
	// Skipped placebo units are counted conservatively: each one enters the
	// denominator AND the "at least as extreme" numerator, as if its ratio
	// had exceeded the treated unit's. Donors whose fit degenerates (zero
	// pre-period variance, NaN ratios) are precisely the ones whose placebo
	// ratio could have been arbitrarily large, so dropping them — as this
	// code once did — silently deflated Table 1's p column whenever the
	// donor pool contained degenerate units. Under-claiming significance is
	// the safe direction for the paper's "not significant" argument.
	PValue float64
	// Skipped lists placebo units whose fit failed (e.g. zero pre variance).
	// They are included conservatively in PValue; see there.
	Skipped []string
}

// PlaceboTest runs the full placebo analysis for the treated unit. Placebos
// are fit on the panel with the genuinely treated unit removed, so its
// post-treatment behaviour cannot contaminate placebo donor pools.
//
// The placebo refits shard across cfg.Pool; cancelling ctx stops scheduling
// further fits and returns ctx.Err() with no result.
func PlaceboTest(ctx context.Context, p *Panel, treated string, t0 int, cfg Config) (*PlaceboResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	real, err := Fit(p, treated, t0, cfg)
	if err != nil {
		return nil, err
	}
	ti, _ := p.UnitIndex(treated)

	// Panel without the treated unit.
	donorUnits := make([]string, 0, len(p.Units)-1)
	rows := make([]int, 0, len(p.Units)-1)
	for i, u := range p.Units {
		if i == ti {
			continue
		}
		donorUnits = append(donorUnits, u)
		rows = append(rows, i)
	}
	if len(donorUnits) < 2 {
		return nil, fmt.Errorf("synthetic: placebo test needs at least 2 donors")
	}
	sub := mathx.NewMatrix(len(rows), p.Y.Cols)
	for k, r := range rows {
		for t := 0; t < p.Y.Cols; t++ {
			sub.Set(k, t, p.Y.At(r, t))
		}
	}
	subPanel, err := NewPanel(donorUnits, p.Times, sub)
	if err != nil {
		return nil, err
	}

	// Each placebo fit is an independent pure function of its donor index,
	// so the pool parallelizes them; results come back in donor order, so
	// the assembled Ratios/Skipped sets are identical to a sequential loop.
	type placeboFit struct {
		ratio   float64
		skipped bool
	}
	fits, err := parallel.Map(ctx, cfg.Pool, len(donorUnits), func(i int) (placeboFit, error) {
		res, err := Fit(subPanel, donorUnits[i], t0, cfg)
		if err != nil || math.IsNaN(res.RMSERatio) {
			return placeboFit{skipped: true}, nil
		}
		return placeboFit{ratio: res.RMSERatio}, nil
	})
	if err != nil {
		// Individual fit failures are folded into Skipped above; the only
		// error Map can surface here is the context's.
		return nil, err
	}

	ratios := make(map[string]float64, len(donorUnits))
	var skipped []string
	for i, f := range fits {
		if f.skipped {
			skipped = append(skipped, donorUnits[i])
			continue
		}
		ratios[donorUnits[i]] = f.ratio
	}
	if len(ratios) == 0 {
		return nil, fmt.Errorf("synthetic: all %d placebo fits failed", len(donorUnits))
	}

	pval := placeboPValue(real.RMSERatio, ratios, len(skipped))
	sort.Strings(skipped)
	// Run-trace accounting: the quantities this test computed and would
	// otherwise discard. No-ops without a recorder on ctx.
	obs.Add(ctx, "placebo.tests", 1)
	obs.Add(ctx, "placebo.fits_attempted", int64(len(donorUnits)))
	obs.Add(ctx, "placebo.fits_skipped", int64(len(skipped)))
	return &PlaceboResult{
		Treated: real,
		Ratios:  ratios,
		PValue:  pval,
		Skipped: skipped,
	}, nil
}

// placeboPValue computes the rank-based p-value including the treated unit
// itself. Skipped placebo units stay in the denominator and count as "at
// least as extreme" (see the PValue doc):
//
//	p = (1 + #{ratio >= treated} + #skipped) / (#placebos + #skipped + 1).
func placeboPValue(treatedRatio float64, ratios map[string]float64, nSkipped int) float64 {
	countGE := 1 // the treated unit always counts
	for _, r := range ratios {
		if r >= treatedRatio {
			countGE++
		}
	}
	return float64(countGE+nSkipped) / float64(len(ratios)+nSkipped+1)
}

// PrePostTTest is the naive alternative to placebo inference that the
// DESIGN.md ablation compares against: a Welch t-test between the unit's own
// pre and post outcome levels, ignoring donors entirely. It conflates the
// treatment with any common shock — included to demonstrate why the paper's
// synthetic-control diagnostics matter.
func PrePostTTest(p *Panel, treated string, t0 int) (delta, pvalue float64, err error) {
	ti, err := p.UnitIndex(treated)
	if err != nil {
		return 0, 0, err
	}
	pre := make([]float64, t0)
	post := make([]float64, p.Y.Cols-t0)
	for t := 0; t < t0; t++ {
		pre[t] = p.Y.At(ti, t)
	}
	for t := t0; t < p.Y.Cols; t++ {
		post[t-t0] = p.Y.At(ti, t)
	}
	_, pvalue = mathx.WelchT(post, pre)
	return mathx.Mean(post) - mathx.Mean(pre), pvalue, nil
}

// PlaceboInTime is the backdating diagnostic: refit the synthetic control
// pretending treatment happened at an earlier time fakeT0 < t0, evaluating
// the "post" period only up to the real treatment. A sound design finds no
// effect there; a nonzero backdated ATT signals pre-trend divergence that
// would contaminate the real estimate.
func PlaceboInTime(p *Panel, treated string, realT0, fakeT0 int, cfg Config) (*Result, error) {
	if fakeT0 >= realT0 {
		return nil, fmt.Errorf("synthetic: fake treatment time %d must precede the real one %d", fakeT0, realT0)
	}
	// Truncate the panel at the real treatment so the genuine effect never
	// enters the placebo window.
	trunc := mathx.NewMatrix(len(p.Units), realT0)
	for i := 0; i < len(p.Units); i++ {
		for t := 0; t < realT0; t++ {
			trunc.Set(i, t, p.Y.At(i, t))
		}
	}
	sub, err := NewPanel(p.Units, p.Times[:realT0], trunc)
	if err != nil {
		return nil, err
	}
	return Fit(sub, treated, fakeT0, cfg)
}
