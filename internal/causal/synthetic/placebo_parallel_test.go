package synthetic

import (
	"context"
	"math"
	"reflect"
	"testing"

	"sisyphus/internal/parallel"
)

// TestPlaceboParallelBitIdentity is the equivalence test the concurrency
// layer is held to: the full PlaceboResult — ratios, p-value, skipped set —
// must be bit-identical whether the donor fits run on one worker or many.
func TestPlaceboParallelBitIdentity(t *testing.T) {
	for _, method := range []Method{Classic, Robust} {
		for seed := uint64(0); seed < 3; seed++ {
			p := factorPanel(200+seed, 12, 60, 45, -5, 1.0)

			ctx := context.Background()
			seq, seqErr := PlaceboTest(ctx, p, "a", 45, Config{Method: method, Pool: parallel.NewPool(1)})
			par, parErr := PlaceboTest(ctx, p, "a", 45, Config{Method: method, Pool: parallel.NewPool(8)})

			if (seqErr == nil) != (parErr == nil) {
				t.Fatalf("method %v seed %d: error mismatch: %v vs %v", method, seed, seqErr, parErr)
			}
			if seqErr != nil {
				continue
			}
			if seq.PValue != par.PValue {
				t.Fatalf("method %v seed %d: p-value %v (seq) != %v (par)", method, seed, seq.PValue, par.PValue)
			}
			if !reflect.DeepEqual(seq.Ratios, par.Ratios) {
				t.Fatalf("method %v seed %d: placebo ratios differ between 1 and 8 workers", method, seed)
			}
			if !reflect.DeepEqual(seq.Skipped, par.Skipped) {
				t.Fatalf("method %v seed %d: skipped sets differ: %v vs %v", method, seed, seq.Skipped, par.Skipped)
			}
			if !reflect.DeepEqual(seq.Treated, par.Treated) {
				t.Fatalf("method %v seed %d: treated fit differs", method, seed)
			}
		}
	}
}

// TestPlaceboPValueConservativeSkips pins the bugfix for silently dropped
// placebo fits: a skipped unit must raise the p-value (count as extreme),
// never shrink the denominator.
func TestPlaceboPValueConservativeSkips(t *testing.T) {
	ratios := map[string]float64{"b": 3.0, "c": 0.5, "d": 0.9}
	treated := 2.0

	// No skips: treated + b are >= treated among 4 units -> 2/4.
	if got := placeboPValue(treated, ratios, 0); got != 0.5 {
		t.Fatalf("no-skip p = %v want 0.5", got)
	}
	// Two skipped donors join both numerator and denominator: 4/6.
	if got := placeboPValue(treated, ratios, 2); math.Abs(got-4.0/6.0) > 1e-15 {
		t.Fatalf("skip-2 p = %v want 4/6", got)
	}
	// The old behaviour would have produced 2/4 regardless of skips;
	// conservativeness means p can only grow with skips.
	prev := placeboPValue(treated, ratios, 0)
	for k := 1; k <= 5; k++ {
		cur := placeboPValue(treated, ratios, k)
		if cur <= prev {
			t.Fatalf("p-value not monotone in skips: p(%d)=%v <= p(%d)=%v", k, cur, k-1, prev)
		}
		prev = cur
	}
	// Bounds survive even when everything is skipped but one fit.
	if got := placeboPValue(treated, map[string]float64{"b": 0.1}, 20); got <= 0 || got > 1 {
		t.Fatalf("p out of bounds: %v", got)
	}
}
