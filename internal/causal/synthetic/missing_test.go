package synthetic

import (
	"reflect"
	"strings"
	"testing"

	"sisyphus/internal/mathx"
)

func maskedFixture(t *testing.T, observed [][]bool) *MaskedPanel {
	t.Helper()
	units := []string{"treated", "donor-a", "donor-b"}
	times := []float64{0, 1, 2, 3}
	y := mathx.NewMatrix(3, 4)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			y.Set(i, j, float64(10*i+j))
		}
	}
	mp, err := NewMaskedPanel(units, times, y, observed)
	if err != nil {
		t.Fatal(err)
	}
	return mp
}

func fullMask(rows, cols int) [][]bool {
	m := make([][]bool, rows)
	for i := range m {
		m[i] = make([]bool, cols)
		for j := range m[i] {
			m[i][j] = true
		}
	}
	return m
}

func TestNewMaskedPanelValidatesDimensions(t *testing.T) {
	y := mathx.NewMatrix(2, 3)
	cases := []struct {
		name     string
		units    []string
		times    []float64
		observed [][]bool
	}{
		{"unit count mismatch", []string{"a"}, []float64{0, 1, 2}, fullMask(1, 3)},
		{"time count mismatch", []string{"a", "b"}, []float64{0, 1}, fullMask(2, 2)},
		{"mask row count", []string{"a", "b"}, []float64{0, 1, 2}, fullMask(3, 3)},
		{"mask row length", []string{"a", "b"}, []float64{0, 1, 2}, [][]bool{{true, true, true}, {true}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewMaskedPanel(c.units, c.times, y, c.observed); err == nil {
				t.Fatal("invalid shape accepted")
			}
		})
	}
}

// TestFullyObservedPassThrough: the masked path with no missing cells must
// hand estimators exactly the panel they would have built directly — this is
// the panel-layer half of the fault-rate-zero bit-identity invariant.
func TestFullyObservedPassThrough(t *testing.T) {
	mp := maskedFixture(t, fullMask(3, 4))
	panel, cov, err := mp.Apply(MissingPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewPanel(mp.Units, mp.Times, mp.Y)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(panel.Units, direct.Units) || !reflect.DeepEqual(panel.Times, direct.Times) {
		t.Fatal("pass-through changed panel labels")
	}
	if !reflect.DeepEqual(panel.Y.Data, direct.Y.Data) {
		t.Fatalf("pass-through changed values:\n masked: %v\n direct: %v", panel.Y.Data, direct.Y.Data)
	}
	for _, c := range cov {
		if c.Dropped || c.Fraction() != 1 {
			t.Fatalf("full coverage misreported: %+v", c)
		}
	}
}

func TestApplyDropsUnderCoveredDonors(t *testing.T) {
	obs := fullMask(3, 4)
	obs[2] = []bool{true, false, false, false} // donor-b: 25% coverage
	mp := maskedFixture(t, obs)
	panel, cov, err := mp.Apply(MissingPolicy{MinCoverage: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(panel.Units) != 2 || panel.Units[0] != "treated" || panel.Units[1] != "donor-a" {
		t.Fatalf("surviving units = %v", panel.Units)
	}
	// The coverage report still lists every input unit, flagged.
	if len(cov) != 3 {
		t.Fatalf("coverage rows = %d, want 3", len(cov))
	}
	if cov[2].Unit != "donor-b" || !cov[2].Dropped || cov[2].Observed != 1 {
		t.Fatalf("dropped donor misreported: %+v", cov[2])
	}
	if cov[0].Dropped || cov[1].Dropped {
		t.Fatal("healthy units flagged as dropped")
	}
}

// TestKeepUnitsExemptsTreatedUnit: the treated unit survives any coverage,
// so the caller reports estimate-plus-coverage instead of a missing row.
func TestKeepUnitsExemptsTreatedUnit(t *testing.T) {
	obs := fullMask(3, 4)
	obs[0] = []bool{true, false, false, false} // treated: 25% coverage
	mp := maskedFixture(t, obs)
	panel, cov, err := mp.Apply(MissingPolicy{MinCoverage: 0.5, KeepUnits: []string{"treated"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(panel.Units) != 3 {
		t.Fatalf("KeepUnits did not protect the treated unit: %v", panel.Units)
	}
	if cov[0].Dropped {
		t.Fatal("kept unit flagged as dropped")
	}
	if cov[0].Fraction() != 0.25 {
		t.Fatalf("coverage fraction = %v, want 0.25", cov[0].Fraction())
	}
}

func TestApplyImputesGaps(t *testing.T) {
	obs := fullMask(3, 4)
	obs[1] = []bool{true, false, false, true} // donor-a: interior gap
	mp := maskedFixture(t, obs)
	// Poison the unobserved cells: Apply must overwrite them, not trust them.
	mp.Y.Set(1, 1, -999)
	mp.Y.Set(1, 2, -999)
	panel, _, err := mp.Apply(MissingPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	i, err := panel.UnitIndex("donor-a")
	if err != nil {
		t.Fatal(err)
	}
	// Endpoints 10 and 13 → linear fill 11, 12.
	if got := panel.Y.At(i, 1); got != 11 {
		t.Fatalf("imputed cell (1) = %v, want 11", got)
	}
	if got := panel.Y.At(i, 2); got != 12 {
		t.Fatalf("imputed cell (2) = %v, want 12", got)
	}
}

func TestApplyErrorsWhenPanelCollapses(t *testing.T) {
	obs := [][]bool{
		fullMask(1, 4)[0],
		{false, false, false, false},
		{false, false, false, false},
	}
	mp := maskedFixture(t, obs)
	_, cov, err := mp.Apply(MissingPolicy{KeepUnits: []string{"treated"}})
	if err == nil {
		t.Fatal("collapsed donor pool accepted")
	}
	if !strings.Contains(err.Error(), "survive") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Even on error the coverage report explains what happened.
	if len(cov) != 3 || !cov[1].Dropped || !cov[2].Dropped {
		t.Fatalf("coverage report incomplete on collapse: %+v", cov)
	}
}

func TestMissingPolicyDefaultsAndClamping(t *testing.T) {
	if got := (MissingPolicy{}).withDefaults().MinCoverage; got != 0.5 {
		t.Fatalf("default MinCoverage = %v, want 0.5", got)
	}
	if got := (MissingPolicy{MinCoverage: -2}).withDefaults().MinCoverage; got != 0 {
		t.Fatalf("negative MinCoverage clamps to %v, want 0", got)
	}
	if got := (MissingPolicy{MinCoverage: 7}).withDefaults().MinCoverage; got != 1 {
		t.Fatalf("huge MinCoverage clamps to %v, want 1", got)
	}
}
