package experiments

import (
	"fmt"
	"math"
)

// nanNullable is the "no value" sample field.
func nanNullable() NullableFloat { return NullableFloat(math.NaN()) }

// Sample is one estimator outcome extracted from an experiment result for
// distributional aggregation: the sweep driver pools Samples across a
// scenario×seed grid and reports bias/RMSE/coverage/p quantiles per
// estimator. It is a projection of existing result fields — results
// themselves gain no fields for sweeps, so the `-json` serialization of a
// single run is untouched.
type Sample struct {
	// Estimator names the estimate's method (and, where relevant, its
	// operating point — e.g. "synthetic-control" or "sc@i0.40").
	Estimator string
	// Unit identifies what was estimated ("AS3100/Johannesburg", or an
	// aggregate label like "level").
	Unit string
	// Bias is estimate − truth, in the estimator's native unit (ms here).
	// NaN when the run had no ground truth for this sample.
	Bias NullableFloat
	// PValue is the sample's placebo p-value (NaN when not computed).
	PValue NullableFloat
	// Coverage is the fraction of the sample's panel backed by real
	// measurements (1.0 on clean runs).
	Coverage float64
}

// Sampler is implemented by experiment results that can project themselves
// into distributional samples; the sweep driver accepts exactly these
// experiments (plus a scenario-capable options type — see
// Experiment.OptionsForScenario).
type Sampler interface {
	Samples() []Sample
}

// Samples projects the Table 1 result: one sample per treated unit that
// crossed the exchange and produced an estimate. Bias is the estimate
// against counterfactual-replay truth (NaN without WithTruth).
func (r *Table1Result) Samples() []Sample {
	var out []Sample
	for _, row := range r.Rows {
		if !row.Crossed || row.EstimateError != "" {
			continue
		}
		bias := nanNullable()
		if !row.TrueDelta.IsNaN() {
			bias = NullableFloat(row.RTTDelta - float64(row.TrueDelta))
		}
		out = append(out, Sample{
			Estimator: "synthetic-control",
			Unit:      row.Unit.String(),
			Bias:      bias,
			PValue:    NullableFloat(row.PValue),
			Coverage:  row.Coverage,
		})
	}
	return out
}

// Samples projects the chaos sweep: one sample per fault-intensity level,
// the estimator name carrying the operating point so levels aggregate
// separately across the grid. Bias here is the level's mean |est − true| —
// a magnitude, so its grid RMSE/quantiles read as degradation curves.
func (r *ChaosResult) Samples() []Sample {
	out := make([]Sample, 0, len(r.Levels))
	for _, l := range r.Levels {
		out = append(out, Sample{
			Estimator: fmt.Sprintf("sc@i%.2f", l.Intensity),
			Unit:      "level",
			Bias:      l.MeanAbsError,
			PValue:    l.MeanPValue,
			Coverage:  l.MeanUnitCoverage,
		})
	}
	return out
}
