package experiments

import (
	"fmt"
	"math"
)

// nanNullable is the "no value" sample field.
func nanNullable() NullableFloat { return NullableFloat(math.NaN()) }

// Sample is one estimator outcome extracted from an experiment result for
// distributional aggregation: the sweep driver pools Samples across a
// scenario×seed grid and reports bias/RMSE/coverage/p quantiles per
// estimator. It is a projection of existing result fields — results
// themselves gain no fields for sweeps, so the `-json` serialization of a
// single run is untouched.
type Sample struct {
	// Estimator names the estimate's method (and, where relevant, its
	// operating point — e.g. "synthetic-control" or "sc@i0.40").
	Estimator string
	// Unit identifies what was estimated ("AS3100/Johannesburg", or an
	// aggregate label like "level").
	Unit string
	// Bias is estimate − truth, in the estimator's native unit (ms here).
	// NaN when the run had no ground truth for this sample.
	Bias NullableFloat
	// PValue is the sample's placebo p-value (NaN when not computed).
	PValue NullableFloat
	// Coverage is the fraction of the sample's panel backed by real
	// measurements (1.0 on clean runs).
	Coverage float64
}

// Sampler is implemented by experiment results that can project themselves
// into distributional samples; the sweep driver accepts exactly these
// experiments (plus a scenario-capable options type — see
// Experiment.OptionsForScenario).
type Sampler interface {
	Samples() []Sample
}

// Samples projects the Table 1 result: one sample per treated unit that
// crossed the exchange and produced an estimate. Bias is the estimate
// against counterfactual-replay truth (NaN without WithTruth).
func (r *Table1Result) Samples() []Sample {
	var out []Sample
	for _, row := range r.Rows {
		if !row.Crossed || row.EstimateError != "" {
			continue
		}
		bias := nanNullable()
		if !row.TrueDelta.IsNaN() {
			bias = NullableFloat(row.RTTDelta - float64(row.TrueDelta))
		}
		out = append(out, Sample{
			Estimator: "synthetic-control",
			Unit:      row.Unit.String(),
			Bias:      bias,
			PValue:    NullableFloat(row.PValue),
			Coverage:  row.Coverage,
		})
	}
	return out
}

// Samples projects the chaos sweep: one sample per fault-intensity level,
// the estimator name carrying the operating point so levels aggregate
// separately across the grid. Bias here is the level's mean |est − true| —
// a magnitude, so its grid RMSE/quantiles read as degradation curves.
func (r *ChaosResult) Samples() []Sample {
	out := make([]Sample, 0, len(r.Levels))
	for _, l := range r.Levels {
		out = append(out, Sample{
			Estimator: fmt.Sprintf("sc@i%.2f", l.Intensity),
			Unit:      "level",
			Bias:      l.MeanAbsError,
			PValue:    l.MeanPValue,
			Coverage:  l.MeanUnitCoverage,
		})
	}
	return out
}

// estimateSample projects one estimate.Estimate-shaped outcome against the
// run's ground truth: Bias = effect − truth, Coverage 1 (these runners
// consume the full simulated panel; they have no fault-injection path).
func estimateSample(estimator string, effect, truth, p float64) Sample {
	return Sample{
		Estimator: estimator,
		Unit:      "world",
		Bias:      NullableFloat(effect - truth),
		PValue:    NullableFloat(p),
		Coverage:  1,
	}
}

// Samples projects the confounding panel: one sample per estimator, biased
// against the forced-route ground truth.
func (r *ConfoundingResult) Samples() []Sample {
	return []Sample{
		estimateSample("naive", r.Naive.Effect, r.TrueEffect, r.Naive.PValue()),
		estimateSample("stratified", r.Stratified.Effect, r.TrueEffect, r.Stratified.PValue()),
		estimateSample("regression", r.Regression.Effect, r.TrueEffect, r.Regression.PValue()),
		estimateSample("ipw", r.IPW.Effect, r.TrueEffect, r.IPW.PValue()),
	}
}

// Samples projects the counterfactual contrast: the fitted-SCM attribution
// biased against the replay-truth attribution (p-values do not apply).
func (r *CounterfactualResult) Samples() []Sample {
	s := estimateSample("scm-counterfactual", r.AttributionSCM, r.AttributionTru, 0)
	s.PValue = nanNullable()
	return []Sample{s}
}

// Samples projects the family-knob IV panel against the calm-hour truth.
func (r *FamilyKnobResult) Samples() []Sample {
	naive := estimateSample("naive-ols", r.NaiveOLS.Effect, r.TrueEffect, 0)
	naive.PValue = nanNullable()
	iv := estimateSample("family-iv", r.FamilyIV.Effect, r.TrueEffect, 0)
	iv.PValue = nanNullable()
	return []Sample{naive, iv}
}

// Samples projects the instrument panel: the valid and invalid 2SLS fits
// plus naive OLS, all against the complier ground truth.
func (r *IVResult) Samples() []Sample {
	naive := estimateSample("naive-ols", r.NaiveOLS.Effect, r.TrueEffect, 0)
	naive.PValue = nanNullable()
	valid := estimateSample("maintenance-iv", r.ValidIV.Effect, r.TrueEffect, 0)
	valid.PValue = nanNullable()
	invalid := estimateSample("load-coupled-iv", r.InvalidIV.Effect, r.TrueEffect, 0)
	invalid.PValue = nanNullable()
	return []Sample{naive, valid, invalid}
}

// Samples projects the M-Lab contrast: the randomized and self-selected
// site contrasts against the direct-measurement truth.
func (r *MLabResult) Samples() []Sample {
	return []Sample{
		estimateSample("randomized", r.Randomized.Effect, r.TrueEffect, r.Randomized.PValue()),
		estimateSample("self-selected", r.SelfSelected.Effect, r.TrueEffect, r.SelfSelected.PValue()),
	}
}

// Samples projects the exposure sweep: the rank-flip count is the scalar
// that measures "exposure ≠ impact" on this world; truth is zero flips for
// a world where exposure ranks impact perfectly, so Bias is the count
// itself.
func (r *ExposureResult) Samples() []Sample {
	s := estimateSample("exposure-rank-flips", float64(r.RankFlips), 0, 0)
	s.PValue = nanNullable()
	return []Sample{s}
}

// Samples projects the postmortem: per-candidate residual unreachability
// after counterfactually removing that candidate, biased against zero (the
// residual a true single cause leaves when removed).
func (r *RootCauseResult) Samples() []Sample {
	noCong := estimateSample("residual@no-congestion", float64(r.WithoutCongestion), 0, 0)
	noCong.PValue = nanNullable()
	noCut := estimateSample("residual@no-cut", float64(r.WithoutLinkCut), 0, 0)
	noCut.PValue = nanNullable()
	return []Sample{noCong, noCut}
}

// Samples projects the DiD-vs-SC contrast: both pooled estimators against
// the simulator's mean true effect.
func (r *DiDResult) Samples() []Sample {
	did := estimateSample("pooled-did", r.PooledDiD.Effect, r.TrueAverage, 0)
	did.PValue = nanNullable()
	sc := estimateSample("sc-average", r.SCAverage, r.TrueAverage, 0)
	sc.PValue = nanNullable()
	return []Sample{did, sc}
}
