package experiments

import (
	"context"
	"fmt"

	"sisyphus/internal/causal/data"
	"sisyphus/internal/causal/estimate"
	"sisyphus/internal/causal/scm"
	"sisyphus/internal/mathx"
)

// CellularOptions sizes the cellular confounding box's sample.
type CellularOptions struct {
	N int // sessions to draw from the structural model
}

func (CellularOptions) experimentOptions() {}

// CellularResult reproduces the §3 confounding box: the SIGCOMM'21 cellular
// reliability finding that failure rates are *higher* at the strongest
// signal levels. Deployment density confounds the relationship: dense
// deployments (transit hubs) have strong signal AND more interference-driven
// failures. The naive correlation is positive; adjusting for density
// reveals the true protective effect of signal strength.
type CellularResult struct {
	N               int
	NaiveCorr       float64
	NaiveSlope      estimate.Estimate
	AdjustedSlope   estimate.Estimate
	StratifiedSlope estimate.Estimate
	TrueCoefficient float64
}

// Render prints the contrast.
func (r *CellularResult) Render() string {
	t := &table{header: []string{"analysis", "signal → failure coefficient", "SE"}}
	t.add("naive OLS (no adjustment)", fmt.Sprintf("%+.4f", r.NaiveSlope.Effect), fmt.Sprintf("%.4f", r.NaiveSlope.SE))
	t.add("OLS adjusting for density", fmt.Sprintf("%+.4f", r.AdjustedSlope.Effect), fmt.Sprintf("%.4f", r.AdjustedSlope.SE))
	t.add("stratified on density", fmt.Sprintf("%+.4f", r.StratifiedSlope.Effect), fmt.Sprintf("%.4f", r.StratifiedSlope.SE))
	t.add("TRUE structural coefficient", fmt.Sprintf("%+.4f", r.TrueCoefficient), "-")
	return fmt.Sprintf("Cellular-reliability confounding box (§3): density confounds signal and failure\n(n=%d sessions, naive corr(signal, failure)=%.3f —\"stronger signal, more failures\")\n\n%s",
		r.N, r.NaiveCorr, t.String())
}

// RunCellular builds the structural model of the box and shows that naive
// analysis reverses the sign of the signal → failure effect.
//
// Structural truth: density ~ N(0,1); signal = 0.9·density + u (denser
// deployments → stronger signal); interference = 0.8·density + u; failure
// = 0.5·interference − 0.3·signal + u. Signal *reduces* failure (−0.3),
// but density raises both signal and failure, so the marginal association
// is positive.
func RunCellular(ctx context.Context, seed uint64, n int) (*CellularResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if n <= 0 {
		n = 20000
	}
	res := &CellularResult{N: n, TrueCoefficient: -0.3}
	var cols map[string][]float64
	var f, fb *data.Frame
	var bin []float64
	err := stagedRun(ctx, "cellular", func(ctx context.Context) error {
		m := scm.New()
		if err := m.DefineLinear("density", nil, 0, scm.GaussianNoise(1)); err != nil {
			return err
		}
		if err := m.DefineLinear("signal", map[string]float64{"density": 0.9}, 0, scm.GaussianNoise(0.6)); err != nil {
			return err
		}
		if err := m.DefineLinear("interference", map[string]float64{"density": 0.8}, 0, scm.GaussianNoise(0.4)); err != nil {
			return err
		}
		if err := m.DefineLinear("failure", map[string]float64{"interference": 0.5, "signal": -0.3}, 1, scm.GaussianNoise(0.3)); err != nil {
			return err
		}
		var err error
		cols, err = m.SampleN(mathx.NewRNG(seed), n)
		return err
	}, func(ctx context.Context) error {
		var err error
		if f, err = data.FromColumns(cols); err != nil {
			return err
		}
		// The stratified estimator needs a binary treatment: median-split
		// the signal.
		med := mathx.Median(cols["signal"])
		bin = make([]float64, n)
		for i, v := range cols["signal"] {
			if v > med {
				bin[i] = 1
			}
		}
		fb = data.New()
		if err := fb.AddColumn("strongSignal", bin); err != nil {
			return err
		}
		if err := fb.AddColumn("failure", cols["failure"]); err != nil {
			return err
		}
		return fb.AddColumn("density", cols["density"])
	}, func(ctx context.Context) error {
		res.NaiveCorr = mathx.Correlation(cols["signal"], cols["failure"])

		naive, err := estimate.OLS(f, "failure", "signal")
		if err != nil {
			return err
		}
		c, _ := naive.Coefficient("signal")
		se, _ := naive.CoefficientSE("signal")
		res.NaiveSlope = estimate.Estimate{Method: "naive OLS", Effect: c, SE: se, N: n}

		adj, err := estimate.OLS(f, "failure", "signal", "density")
		if err != nil {
			return err
		}
		c2, _ := adj.Coefficient("signal")
		se2, _ := adj.CoefficientSE("signal")
		res.AdjustedSlope = estimate.Estimate{Method: "adjusted OLS", Effect: c2, SE: se2, N: n}

		strat, err := estimate.Stratified(fb, "strongSignal", "failure", []string{"density"}, 20)
		if err != nil {
			return err
		}
		// Scale the binary contrast to a per-unit-signal slope for display:
		// E[signal | top half] − E[signal | bottom half].
		var hi, lo []float64
		for i, v := range cols["signal"] {
			if bin[i] == 1 {
				hi = append(hi, v)
			} else {
				lo = append(lo, v)
			}
		}
		gap := mathx.Mean(hi) - mathx.Mean(lo)
		res.StratifiedSlope = estimate.Estimate{
			Method: strat.Method, Effect: strat.Effect / gap, SE: strat.SE / gap, N: strat.N,
		}
		return nil
	}, nil)
	if err != nil {
		return nil, err
	}
	return res, nil
}

func init() {
	defaults := CellularOptions{N: 20000}
	register(Experiment{
		ID:       "cellular",
		Paper:    "§3 confounding box: deployment density confounds signal strength and failures",
		Defaults: defaults,
		Run: func(ctx context.Context, cfg Config) (Renderable, error) {
			o, err := optionsOr(cfg, defaults)
			if err != nil {
				return nil, err
			}
			return RunCellular(ctx, cfg.Seed, o.N)
		},
	})
}
