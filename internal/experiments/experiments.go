// Package experiments implements one runner per quantitative element of the
// paper: Table 1 (the NAPAfrica synthetic-control case study), the §3
// running example and its boxed counterexamples, the M-Lab randomization
// argument, instrumental variables on natural experiments, counterfactual
// replay, and the §4 platform-design demonstrations. Each runner returns a
// typed result plus a rendered text table; EXPERIMENTS.md records how the
// outputs compare with the paper.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"sisyphus/internal/parallel"
)

// Experiment is a runnable reproduction unit.
type Experiment struct {
	ID    string // e.g. "table1"
	Paper string // which paper element it reproduces
	Run   func(seed uint64) (Renderable, error)
}

// Renderable is any experiment result that can print itself.
type Renderable interface {
	Render() string
}

// registry holds all experiments keyed by ID.
var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %s)",
			id, strings.Join(IDs(), ", "))
	}
	return e, nil
}

// IDs lists registered experiment IDs, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// All returns all experiments sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, id := range IDs() {
		out = append(out, registry[id])
	}
	return out
}

// RunOutcome is one experiment's result from a suite run.
type RunOutcome struct {
	Exp Experiment
	Res Renderable
	Err error
}

// RunAll runs every registered experiment with the same seed and returns
// outcomes in ID order. The experiments are independent — each builds its
// own simulator world from the seed — so they fan out across the worker
// pool; every experiment derives its randomness from the seed alone, never
// from shared state, so each outcome is bit-identical to a sequential run.
// Unlike a sequential stop-at-first-failure loop, all experiments run even
// if one fails; callers decide how to report per-experiment errors.
func RunAll(seed uint64) []RunOutcome {
	exps := All()
	out, _ := parallel.Map(len(exps), func(i int) (RunOutcome, error) {
		res, err := exps[i].Run(seed)
		return RunOutcome{Exp: exps[i], Res: res, Err: err}, nil
	})
	return out
}

// table renders an aligned text table.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	line(t.header)
	var total int
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return sb.String()
}
