// Package experiments implements one runner per quantitative element of the
// paper: Table 1 (the NAPAfrica synthetic-control case study), the §3
// running example and its boxed counterexamples, the M-Lab randomization
// argument, instrumental variables on natural experiments, counterfactual
// replay, and the §4 platform-design demonstrations. Each runner returns a
// typed result plus a rendered text table; EXPERIMENTS.md records how the
// outputs compare with the paper.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"sisyphus/internal/artifact"
	"sisyphus/internal/netsim/scenario"
	"sisyphus/internal/obs"
	"sisyphus/internal/parallel"
	"sisyphus/internal/pipeline"
)

// Options is the marker interface for per-experiment typed options (trial
// counts, horizon hours, sweep grids). Each experiment declares its own
// options struct; the unexported method keeps arbitrary types out of
// Config.Opts so a mismatch is always a typed, reportable error.
type Options interface {
	experimentOptions()
}

// Config carries everything an experiment run needs besides the context:
// the seed all randomness derives from, the worker pool every internal
// fan-out shards over, and optional typed options. The zero value is valid
// (seed 0, default-width pool, registered default options).
type Config struct {
	// Seed is the root of every RNG stream the experiment consumes.
	Seed uint64
	// Pool shards the experiment's internal parallelism (placebo fits, BGP
	// propagation, Monte-Carlo trials). Experiments are bit-identical at
	// any width.
	Pool parallel.Pool
	// Artifacts, when non-nil, memoizes scenario worlds, pre-converged RIBs,
	// and measurement campaigns by content-addressed key, so experiments that
	// request the same ⟨kind, scenario, seed, config⟩ share one build. Nil
	// disables caching: every fetch falls through to a fresh build, which is
	// byte-identical to the cached path by construction (fetches return
	// defensive forks either way the store is consulted).
	Artifacts *artifact.Store
	// Opts are the experiment's typed options; nil runs the registered
	// defaults (Experiment.Defaults). Passing options of another
	// experiment's type is an error.
	Opts Options
	// Only, consumed by RunAll, restricts the suite to these experiment
	// IDs (nil means all). Unknown IDs are an error.
	Only []string
}

// optionsOr returns cfg.Opts as T when set, or def when unset.
func optionsOr[T Options](cfg Config, def T) (T, error) {
	if cfg.Opts == nil {
		return def, nil
	}
	v, ok := cfg.Opts.(T)
	if !ok {
		var zero T
		return zero, fmt.Errorf("experiments: options are %T, want %T", cfg.Opts, zero)
	}
	return v, nil
}

// noOptions rejects stray options on experiments that take none, so a typo'd
// Opts is a typed error rather than silently ignored.
func noOptions(id string, cfg Config) error {
	if cfg.Opts != nil {
		return fmt.Errorf("experiments: %s takes no options, got %T", id, cfg.Opts)
	}
	return nil
}

// HorizonOptions is the shared options type for the single-knob simulation
// experiments that run on purpose-built boards rather than a registry world
// (collider, intent): how many simulated hours to run. Each experiment
// registers its own default horizon.
type HorizonOptions struct {
	Hours int
}

func (HorizonOptions) experimentOptions() {}

// ScenarioChoice is the embeddable scenario coordinate for the options of
// scenario-capable experiments. The field is `json:"-"` on purpose: the
// scenario is addressed by the artifact-key/scenario coordinate (the
// -scenario flag, the ?scenario= parameter, a sweep column), never by the
// options document, so an options JSON round trip is byte-identical whether
// or not a scenario was chosen. Embedding it gives an options type the
// field and the ScenarioID getter; the type completes the ScenarioOptions
// capability by adding its own one-line WithScenario.
type ScenarioChoice struct {
	// Scenario names the registered world to run on; empty means the
	// default Table 1 world (scenario.SouthAfricaID).
	Scenario string `json:"-"`
}

// ScenarioID returns the chosen world id ("" = the default world).
func (c ScenarioChoice) ScenarioID() string { return c.Scenario }

// scenarioOr resolves an options scenario field to a concrete world id:
// empty means the default Table 1 world.
func scenarioOr(id string) string {
	if id == "" {
		return scenario.SouthAfricaID
	}
	return id
}

// ScenarioOptions is the capability interface scenario-generic experiments
// implement on their options: the registry asks the options value itself
// whether (and how) it can be retargeted at a world, instead of keeping a
// hard-coded list of capable experiment ids.
type ScenarioOptions interface {
	Options
	// ScenarioID is the chosen world id; empty means the default world.
	ScenarioID() string
	// WithScenario returns a copy of the options retargeted at the world.
	WithScenario(id string) Options
}

// WorldOptions is the shared options type for the registry-world simulation
// experiments (confounding, counterfactual, familyknob, instrument, mlab):
// the world to run on plus how many simulated hours to run. Each experiment
// registers its own default horizon.
type WorldOptions struct {
	ScenarioChoice
	Hours int
}

func (WorldOptions) experimentOptions() {}

// WithScenario implements ScenarioOptions.
func (o WorldOptions) WithScenario(id string) Options {
	o.Scenario = id
	return o
}

// Experiment is a runnable reproduction unit.
type Experiment struct {
	ID    string // e.g. "table1"
	Paper string // which paper element it reproduces
	// Defaults holds the registered default options — what Run uses when
	// cfg.Opts is nil, and what `sisyphus -all` runs. Exposed so callers
	// can start from the defaults and tweak one knob.
	Defaults Options
	// Run executes the experiment. It honors ctx (cancellation surfaces as
	// ctx.Err() within one pipeline-stage boundary) and derives all
	// randomness from cfg.Seed, so equal (seed, options) give bit-identical
	// results at any pool width.
	Run func(ctx context.Context, cfg Config) (Renderable, error)
}

// Header renders the experiment's suite-output section header (trailing
// blank line included), shared by the CLI and the golden tests so the two
// can never drift.
func (e Experiment) Header() string {
	return fmt.Sprintf("=== %s: %s ===\n\n", e.ID, e.Paper)
}

// OptionsForScenario returns the experiment's default options retargeted at
// the named world, for experiments whose options implement ScenarioOptions.
// The rest of the suite runs on purpose-built boards (or a fixed two-era
// contrast) and errors here, which is what makes `-scenario`/`-sweep`
// validation a typed refusal instead of a wrong answer on the wrong world.
func (e Experiment) OptionsForScenario(id string) (Options, error) {
	o, err := OptionsWithScenario(e.Defaults, id)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s does not take a scenario (scenario-capable: %s)",
			e.ID, strings.Join(ScenarioCapableIDs(), ", "))
	}
	return o, nil
}

// ScenarioCapableIDs lists the experiments whose options implement the
// ScenarioOptions capability, sorted.
func ScenarioCapableIDs() []string {
	var out []string
	for _, e := range All() {
		if _, ok := e.Defaults.(ScenarioOptions); ok {
			out = append(out, e.ID)
		}
	}
	return out
}

// Renderable is any experiment result that can print itself.
type Renderable interface {
	Render() string
}

// registry holds all experiments keyed by ID.
var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	// Registered runners return concrete result pointers; a failed run would
	// otherwise surface as a typed-nil Renderable that compares non-nil.
	// Normalize here so callers can rely on exactly one of (result, error).
	// The wrapper also scopes the run's observability: every span and metric
	// an experiment records lands under its ID (free when no recorder rides
	// the context — Scoped returns ctx unchanged).
	run := e.Run
	e.Run = func(ctx context.Context, cfg Config) (Renderable, error) {
		ctx = obs.Scoped(ctx, e.ID)
		// Ride the artifact store on the context so deeply nested helpers
		// (fetchWorld, fetchCampaign) reach it without threading a parameter
		// through every experiment signature. A nil store is the off switch.
		ctx = artifact.With(ctx, cfg.Artifacts)
		res, err := run(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return res, nil
	}
	registry[e.ID] = e
}

// stagedRun threads an experiment body through the four canonical pipeline
// seams — Scenario → Dataset → Estimator → Report — as real pipeline stages
// over closure-shared state. Each stage entry is a cancellation barrier and
// a trace point, so every experiment run emits the same four-span shape and
// stops within one seam of a cancelled context. A nil stage body is an
// empty (but still traced) seam: some experiments have no separate dataset
// step because simulation and extraction are one loop.
//
// The bodies run strictly in order in the calling goroutine; wrapping them
// in stages adds no scheduling, no RNG draws, and no output — experiment
// bytes are identical to the pre-stage sequential code.
func stagedRun(ctx context.Context, id string, scenario, dataset, estimator, report func(context.Context) error) error {
	type void = struct{}
	lift := func(seam string, fn func(context.Context) error) pipeline.Stage[void, void] {
		return pipeline.NewStage(id+"/"+seam, func(ctx context.Context, _ void) (void, error) {
			if fn == nil {
				return void{}, nil
			}
			return void{}, fn(ctx)
		})
	}
	run := pipeline.Then(
		pipeline.Then(lift(pipeline.Scenario, scenario), lift(pipeline.Dataset, dataset)),
		pipeline.Then(lift(pipeline.Estimator, estimator), lift(pipeline.Report, report)))
	_, err := run.Run(ctx, void{})
	return err
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %s)",
			id, strings.Join(IDs(), ", "))
	}
	return e, nil
}

// IDs lists registered experiment IDs, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// All returns all experiments sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, id := range IDs() {
		out = append(out, registry[id])
	}
	return out
}

// RunOutcome is one experiment's result from a suite run.
type RunOutcome struct {
	Exp Experiment
	Res Renderable
	Err error
}

// Completed reports whether the experiment actually ran: a cancelled suite
// leaves unscheduled outcomes with neither a result nor an error.
func (o RunOutcome) Completed() bool { return o.Res != nil || o.Err != nil }

// RunAll runs the suite — every registered experiment, or cfg.Only — with
// the same seed and returns outcomes in ID order. The experiments are
// independent — each builds its own simulator world from the seed — so they
// fan out across cfg.Pool; every experiment derives its randomness from the
// seed alone, never from shared state, so each outcome is bit-identical to
// a sequential run. Unlike a sequential stop-at-first-failure loop, all
// experiments run even if one fails; callers decide how to report
// per-experiment errors (a failed experiment is an Err on its outcome, not
// an error from RunAll).
//
// Cancelling ctx stops scheduling further experiments: RunAll returns
// ctx.Err() alongside the outcome slice, in which outcomes that never ran
// report Completed() == false. cfg.Opts is ignored — suite runs use each
// experiment's registered defaults.
func RunAll(ctx context.Context, cfg Config) ([]RunOutcome, error) {
	exps := All()
	if len(cfg.Only) > 0 {
		picked := make([]Experiment, 0, len(cfg.Only))
		seen := make(map[string]bool, len(cfg.Only))
		for _, id := range cfg.Only {
			if seen[id] {
				continue
			}
			seen[id] = true
			e, err := Get(id)
			if err != nil {
				return nil, err
			}
			picked = append(picked, e)
		}
		sort.Slice(picked, func(i, j int) bool { return picked[i].ID < picked[j].ID })
		exps = picked
	}
	runCfg := Config{Seed: cfg.Seed, Pool: cfg.Pool, Artifacts: cfg.Artifacts}
	out, err := parallel.Map(ctx, cfg.Pool, len(exps), func(i int) (RunOutcome, error) {
		res, rerr := exps[i].Run(ctx, runCfg)
		return RunOutcome{Exp: exps[i], Res: res, Err: rerr}, nil
	})
	// Map's zero-valued slots (unscheduled after cancellation) would lose
	// the experiment identity; restore it so callers can report which
	// experiments never ran.
	for i := range out {
		if out[i].Exp.ID == "" {
			out[i].Exp = exps[i]
		}
	}
	return out, err
}

// table renders an aligned text table.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	line(t.header)
	var total int
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return sb.String()
}
