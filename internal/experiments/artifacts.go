package experiments

import (
	"context"

	"sisyphus/internal/artifact"
	"sisyphus/internal/faults"
	"sisyphus/internal/netsim/bgp"
	"sisyphus/internal/netsim/engine"
	"sisyphus/internal/netsim/scenario"
	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/obs"
	"sisyphus/internal/parallel"
	"sisyphus/internal/platform"
	"sisyphus/internal/probe"
)

// Artifact kinds the experiments request through the store. A "world" is a
// freshly built scenario (seed-independent: the builders draw no
// randomness); a "rib" is the world's converged BGP fixed point under the
// empty policy (what every engine computes on first use); a "campaign" is a
// fully simulated measurement run — post-simulation world plus the platform
// store of everything the probes delivered.
const (
	kindWorld    = "world"
	kindRIB      = "rib"
	kindCampaign = "campaign"
)

// fetchWorld returns a caller-owned scenario world plus (when the cache is
// live) a caller-owned fork of its converged empty-policy RIB to seed the
// engine with. With no store on the context it builds the world directly
// and returns a nil RIB — the engine then computes its own fixed point
// lazily, exactly the pre-cache code path.
func fetchWorld(ctx context.Context, pool parallel.Pool, id string) (*scenario.World, *bgp.RIB, error) {
	st := artifact.From(ctx)
	if st == nil {
		s, err := scenario.Build(id)
		return s, nil, err
	}
	wkey, err := artifact.NewKey(kindWorld, id, 0, nil)
	if err != nil {
		return nil, nil, err
	}
	s, err := artifact.GetOrBuild(ctx, st, wkey, artifact.Spec[*scenario.World]{
		Build:  func(ctx context.Context) (*scenario.World, error) { return scenario.Build(id) },
		Fork:   (*scenario.World).Fork,
		Freeze: (*scenario.World).Freeze,
		Size:   (*scenario.World).SizeBytes,
		Codec: &artifact.Codec[*scenario.World]{
			Version: worldCodecVersion,
			Encode:  EncodeWorldArtifact,
			Decode:  DecodeWorldArtifact,
		},
	})
	if err != nil {
		return nil, nil, err
	}
	rkey, err := artifact.NewKey(kindRIB, id, 0, nil)
	if err != nil {
		return nil, nil, err
	}
	rib, err := artifact.GetOrBuild(ctx, st, rkey, artifact.Spec[*bgp.RIB]{
		// The stored RIB is computed over its own private world build so no
		// caller-owned topology leaks into the frozen artifact; the empty
		// policy matches what a fresh engine computes on first use.
		Build: func(ctx context.Context) (*bgp.RIB, error) {
			w, err := scenario.Build(id)
			if err != nil {
				return nil, err
			}
			return bgp.Compute(ctx, pool, w.Topo, nil)
		},
		// Rebind each fork onto the caller's own world fork. The stored
		// original is frozen, so this is a copy-on-write view: per-dest
		// route tables stay shared until a fork writes through
		// MutableLookup.
		Fork:   func(r *bgp.RIB) *bgp.RIB { return r.Fork(s.Topo) },
		Freeze: (*bgp.RIB).Freeze,
		Size:   (*bgp.RIB).SizeBytes,
		Codec: &artifact.Codec[*bgp.RIB]{
			Version: ribCodecVersion,
			Encode:  EncodeRIBArtifact,
			// Decode rebinds onto a freshly built private world, exactly as
			// Build computes over its own private world: no caller-owned
			// topology leaks into the stored original either way.
			Decode: func(b []byte) (*bgp.RIB, error) {
				w, err := scenario.Build(id)
				if err != nil {
					return nil, err
				}
				return DecodeRIBArtifact(b, w.Topo, pool)
			},
		},
	})
	if err != nil {
		return nil, nil, err
	}
	return s, rib, nil
}

// campaignParams is the canonical identity of one simulated measurement
// campaign — every field that changes the bytes the simulation produces.
// It hashes into the campaign artifact key alongside ⟨scenario id, seed⟩,
// so Table 1, DiD, the trombone-era contrast, and every chaos level that
// agree on these coordinates share one simulation. Analysis-side knobs
// (estimator method, bin width, coverage policy, WithTruth) deliberately do
// not appear: they reshape the analysis, not the data.
type campaignParams struct {
	Weeks          int
	JoinWeek       int
	UserRate       float64
	Join           bool
	AlsoJoin       []topo.ASN
	FlapLink       topo.LinkID
	FlapEveryHours float64
	Faults         *faults.Config
	Retry          probe.RetryPolicy
}

// campaignParamsFrom derives the campaign identity from a defaulted
// Table1Config. A disabled fault config (nil or every rate zero) is
// normalized away along with its retry policy: TestFaultRateZeroBitIdentity
// certifies a zero-rate injector is bit-identical to no injector, so the
// normalized key lets the fault-free chaos level share the clean campaign.
func campaignParamsFrom(cfg Table1Config, join bool) campaignParams {
	p := campaignParams{
		Weeks: cfg.Weeks, JoinWeek: cfg.JoinWeek, UserRate: cfg.UserRate,
		Join: join, AlsoJoin: cfg.AlsoJoin, FlapLink: cfg.FlapLink,
		FlapEveryHours: cfg.FlapEveryHours, Faults: cfg.Faults, Retry: cfg.Retry,
	}
	if p.Faults != nil && !p.Faults.Enabled() {
		p.Faults = nil
	}
	if p.Faults == nil {
		p.Retry = probe.RetryPolicy{}
	}
	return p
}

// flapHours returns the link-flap schedule: flap i goes down at the
// closed-form hour 100 + i*period, up 6 hours later, for every flap before
// totalHours. The closed form matters: the accumulating alternative
// (h += period) compounds one float rounding error per flap, so flap i's
// hour drifts from what an equivalent schedule computed elsewhere gets for
// the same i — and schedule identity is what lets two campaigns that agree
// on a key agree on their bytes. A non-positive period schedules nothing.
func flapHours(totalHours, period float64) []float64 {
	if period <= 0 {
		return nil
	}
	var hs []float64
	for i := 0; ; i++ {
		h := 100 + float64(i)*period
		if h >= totalHours {
			return hs
		}
		hs = append(hs, h)
	}
}

// campaign is the campaign artifact: the post-simulation world (IXP joins
// and flaps applied) and the store of every measurement the platform
// ingested.
type campaign struct {
	world *scenario.World
	store *platform.Store
}

// runCampaign simulates one measurement campaign from scratch: fetch (or
// build) the world, seed an adaptive-egress engine, schedule the joins and
// flaps the params call for, drive the user model over the full horizon,
// and ingest everything into a platform store. This is the build function
// behind the campaign artifact and the single place campaign simulation
// happens — Table 1's pipeline and the DiD re-analysis both draw from it.
func runCampaign(ctx context.Context, pool parallel.Pool, id string, seed uint64, p campaignParams) (campaign, error) {
	totalHours := float64(p.Weeks) * 7 * 24
	joinHour := float64(p.JoinWeek) * 7 * 24

	s, rib, err := fetchWorld(ctx, pool, id)
	if err != nil {
		return campaign{}, err
	}
	e := engine.New(s.Topo, seed, engine.Config{AdaptiveEgress: true, Pool: pool, InitialRIB: rib}).Bind(ctx)
	pr := probe.NewProber(e, seed+1)
	// Each world gets its own injector so the factual and counterfactual
	// runs see identical fault streams (same seed, same pre-split rule).
	var inj *faults.Injector
	if p.Faults != nil {
		inj = faults.New(*p.Faults)
		pr.Hook = inj
		pr.Retry = p.Retry
	}
	if p.Join {
		for _, asn := range s.TreatedASNs {
			e.Schedule(engine.EvJoinIXP(joinHour, s.IXPName, asn, 0.02))
		}
		for _, asn := range p.AlsoJoin {
			e.Schedule(engine.EvJoinIXP(joinHour, s.IXPName, asn, 0.02))
		}
	}
	for _, h := range flapHours(totalHours, p.FlapEveryHours) {
		e.Schedule(engine.EvLinkDown(h, p.FlapLink))
		e.Schedule(engine.EvLinkUp(h+6, p.FlapLink))
	}
	var pops []platform.UserPop
	for _, u := range s.AllUnits() {
		src, err := s.UserPoP(u)
		if err != nil {
			return campaign{}, err
		}
		pops = append(pops, platform.UserPop{Src: src, Dst: s.MeasureDst(), Size: 1})
	}
	um := platform.NewUserModel(pops, seed+2)
	um.BaseRate = p.UserRate
	store := platform.NewStore()
	for e.Hour() < totalHours {
		if err := ctx.Err(); err != nil {
			return campaign{}, err
		}
		if err := e.Step(); err != nil {
			return campaign{}, err
		}
		_, ms, err := um.Step(pr)
		if err != nil {
			return campaign{}, err
		}
		if inj != nil {
			ms = inj.Deliver(ms...)
		}
		if err := store.Add(ms...); err != nil {
			return campaign{}, err
		}
	}
	if inj != nil {
		if err := store.Add(inj.Flush()...); err != nil {
			return campaign{}, err
		}
	}
	// Run-trace accounting, per simulated campaign (cache hits skip it: no
	// simulation happened). No-ops without a recorder.
	if inj != nil {
		st := inj.Stats()
		obs.Add(ctx, "faults.drops", st.Drops)
		obs.Add(ctx, "faults.outage_failures", st.OutageFailures)
		obs.Add(ctx, "faults.truncations", st.Truncations)
		obs.Add(ctx, "faults.duplicates", st.Duplicates)
		obs.Add(ctx, "faults.reorders", st.Reorders)
	}
	cov := store.TotalCoverage()
	obs.Add(ctx, "store.scheduled", int64(cov.Scheduled))
	obs.Add(ctx, "store.delivered", int64(cov.Delivered))
	obs.Add(ctx, "store.failed", int64(cov.Failed))
	obs.Gauge(ctx, "store.coverage", cov.Fraction())
	return campaign{world: s, store: store}, nil
}

// fetchCampaign returns a caller-owned campaign — post-simulation world and
// measurement store — through the artifact cache when one rides the
// context, or by simulating directly when not. Params are normalized (see
// campaignParamsFrom) before both keying and building, so everyone who
// shares a key also shares the exact build recipe.
func fetchCampaign(ctx context.Context, pool parallel.Pool, id string, seed uint64, p campaignParams) (*scenario.World, *platform.Store, error) {
	st := artifact.From(ctx)
	if st == nil {
		c, err := runCampaign(ctx, pool, id, seed, p)
		if err != nil {
			return nil, nil, err
		}
		return c.world, c.store, nil
	}
	key, err := artifact.NewKey(kindCampaign, id, seed, p)
	if err != nil {
		return nil, nil, err
	}
	c, err := artifact.GetOrBuild(ctx, st, key, artifact.Spec[campaign]{
		Build: func(ctx context.Context) (campaign, error) { return runCampaign(ctx, pool, id, seed, p) },
		Fork: func(c campaign) campaign {
			return campaign{world: c.world.Fork(), store: c.store.Fork()}
		},
		Freeze: func(c campaign) {
			c.world.Freeze()
			c.store.Freeze()
		},
		// The campaign's residency is the measurement store (with its
		// indexes) plus the post-simulation world riding along with it —
		// the old store-only size undercounted what the LRU actually held.
		Size: func(c campaign) int64 { return c.store.SizeBytes() + c.world.SizeBytes() },
		Codec: &artifact.Codec[campaign]{
			Version: campaignCodecVersion,
			Encode:  func(c campaign) ([]byte, error) { return EncodeCampaignArtifact(c.world, c.store) },
			Decode: func(b []byte) (campaign, error) {
				w, st, err := DecodeCampaignArtifact(b)
				if err != nil {
					return campaign{}, err
				}
				return campaign{world: w, store: st}, nil
			},
		},
	})
	if err != nil {
		return nil, nil, err
	}
	return c.world, c.store, nil
}
