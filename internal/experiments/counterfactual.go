package experiments

import (
	"context"
	"fmt"
	"math"

	"sisyphus/internal/causal/dag"
	"sisyphus/internal/causal/data"
	"sisyphus/internal/causal/scm"
	"sisyphus/internal/mathx"
	"sisyphus/internal/netsim/engine"
	"sisyphus/internal/netsim/traffic"
	"sisyphus/internal/parallel"
)

// CounterfactualResult reproduces §3's counterfactual discussion: a user's
// call degraded right after a reroute — "would quality have been better had
// the route change not occurred?". We answer it two ways: (a) the fitted
// structural model via abduction–action–prediction, and (b) the simulator's
// exact replay of the same world without the route change. The paper can
// only do (a); the simulator validates it against (b).
type CounterfactualResult struct {
	EventHour      float64
	FactualRTT     float64
	SCMPredicted   float64 // counterfactual RTT from the fitted linear SCM
	ReplayTruth    float64 // counterfactual RTT from ground-truth replay
	AttributionSCM float64 // factual − SCM counterfactual
	AttributionTru float64 // factual − replay counterfactual
	FitN           int
	CoefRtoL       float64 // fitted structural coefficient of R on L
}

// Render prints the comparison.
func (r *CounterfactualResult) Render() string {
	t := &table{header: []string{"", "RTT (ms)"}}
	t.add("factual (route changed, congested)", fmt.Sprintf("%.2f", r.FactualRTT))
	t.add("counterfactual, fitted SCM", fmt.Sprintf("%.2f", r.SCMPredicted))
	t.add("counterfactual, ground-truth replay", fmt.Sprintf("%.2f", r.ReplayTruth))
	return fmt.Sprintf("Counterfactual (§3): would the degradation have happened without the reroute?\n(event at hour %.0f; SCM fitted on %d observational hours; fitted R→L coefficient %.2f)\n\n%s\nattribution to the route change: SCM %.2f ms, ground truth %.2f ms\n",
		r.EventHour, r.FitN, r.CoefRtoL, t.String(), r.AttributionSCM, r.AttributionTru)
}

// RunCounterfactual fits a linear SCM over (C, R, L) from observational
// hours of the confounded world, then answers the counterfactual for a
// specific degraded hour where an exogenous policy event rerouted traffic.
// The simulator replays the identical world without the event for truth.
// The world comes from o.Scenario (default the South Africa world) and must
// cast a multihomed eyeball.
func RunCounterfactual(ctx context.Context, pool parallel.Pool, seed uint64, o WorldOptions) (*CounterfactualResult, error) {
	hours := o.Hours
	if hours <= 0 {
		hours = 1200
	}
	scenarioID := scenarioOr(o.Scenario)
	eventHour := float64(hours) - 200

	run := func(withEvent bool) (*engine.Engine, []float64, []float64, []float64, error) {
		s, rib, err := fetchWorld(ctx, pool, scenarioID)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		cast, err := s.RequireEyeball()
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("experiments: world %q: %w", scenarioID, err)
		}
		dst := s.MeasureDst()
		e := engine.New(s.Topo, seed, engine.Config{Pool: pool, InitialRIB: rib}).Bind(ctx)
		rel, err := s.Topo.Relationships()
		if err != nil {
			return nil, nil, nil, nil, err
		}
		// Congestion lands on the content network's shared access link, so
		// it degrades BOTH candidate routes equally: the reroute's causal
		// effect is the (small, constant) path-length difference, while
		// congestion drives the visible spikes. Same seeds in both worlds.
		shared, err := cast.SharedUplink.Resolve(rel)
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("experiments: world %q: %w", scenarioID, err)
		}
		crowdRNG := mathx.NewRNG(seed + 1)
		for h := 30.0; h < float64(hours); h += 50 + 40*crowdRNG.Float64() {
			e.Traffic.AddFlashCrowd(traffic.FlashCrowd{
				Link: shared, StartHour: h, Hours: 8 + 8*crowdRNG.Float64(), Magnitude: 0.2 + 0.15*crowdRNG.Float64(),
			})
		}
		// A congestion burst coincides with the event window so the
		// factual hour is genuinely degraded for two reasons at once —
		// the ambiguity the counterfactual must resolve.
		e.Traffic.AddFlashCrowd(traffic.FlashCrowd{Link: shared, StartHour: eventHour - 2, Hours: 12, Magnitude: 0.25})
		// Operator route tests pre-event (identical in both worlds): they
		// give the SCM fit the route variation it needs to identify the
		// R → L coefficient. This is §4's exogenous-knob proposal in use.
		flipRNG := mathx.NewRNG(seed + 2)
		for h := 40.0; h < eventHour-30; h += 60 + 80*flipRNG.Float64() {
			dur := 4 + 8*flipRNG.Float64()
			e.Schedule(engine.EvSetLocalPref(h, cast.ASN, cast.Alternate, 400))
			e.Schedule(engine.EvSetLocalPref(h+dur, cast.ASN, cast.Alternate, 100))
		}
		if withEvent {
			// The reroute under scrutiny: an exogenous local-pref flip at
			// eventHour moves the eyeball's traffic onto its alternate.
			e.Schedule(engine.EvSetLocalPref(eventHour, cast.ASN, cast.Alternate, 400))
		}
		src, err := s.Topo.FindPoP(cast.ASN, cast.City)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		var cCol, rCol, lCol []float64
		for e.Hour() < float64(hours) {
			if err := ctx.Err(); err != nil {
				return nil, nil, nil, nil, err
			}
			if err := e.Step(); err != nil {
				return nil, nil, nil, nil, err
			}
			perf, err := e.PerfToAS(src, dst)
			if err != nil {
				return nil, nil, nil, nil, err
			}
			onAlt := 0.0
			for _, asn := range perf.Path.ASPath {
				if asn == cast.Alternate {
					onAlt = 1
				}
			}
			cCol = append(cCol, e.Utilization(shared))
			rCol = append(rCol, onAlt)
			lCol = append(lCol, perf.RTTms)
		}
		return e, cCol, rCol, lCol, nil
	}

	res := &CounterfactualResult{EventHour: eventHour}
	var c1, r1, l1, l0 []float64
	var eventIdx, obsIdx int
	var f *data.Frame
	err := stagedRun(ctx, "counterfactual", func(ctx context.Context) error {
		var err error
		if _, c1, r1, l1, err = run(true); err != nil {
			return err
		}
		_, _, _, l0, err = run(false)
		return err
	}, func(ctx context.Context) error {
		eventIdx = int(eventHour) // step index ≈ hour (1h steps), event fires at that step
		if eventIdx+1 >= len(l1) {
			return fmt.Errorf("experiments: event index out of range")
		}
		// Pick the first post-event hour as "the degraded call".
		obsIdx = eventIdx + 1
		// Fit the SCM on pre-event observational data only (the analyst
		// cannot use the future).
		var err error
		f, err = data.FromColumns(map[string][]float64{
			"C": c1[:eventIdx], "R": r1[:eventIdx], "L": l1[:eventIdx],
		})
		return err
	}, func(ctx context.Context) error {
		g := dag.MustParse("C -> R; C -> L; R -> L")
		model, err := scm.FitLinear(g, f)
		if err != nil {
			return err
		}
		observed := map[string]float64{"C": c1[obsIdx], "R": r1[obsIdx], "L": l1[obsIdx]}
		cf, err := model.Counterfactual(observed, map[string]float64{"R": 0})
		if err != nil {
			return err
		}
		res.FactualRTT = l1[obsIdx]
		res.SCMPredicted = cf["L"]
		res.ReplayTruth = l0[obsIdx]
		res.FitN = eventIdx
		res.AttributionSCM = res.FactualRTT - res.SCMPredicted
		res.AttributionTru = res.FactualRTT - res.ReplayTruth
		if coef, ok := model.Coefficient("L", "R"); ok {
			res.CoefRtoL = coef
		}
		return nil
	}, nil)
	if err != nil {
		return nil, err
	}
	_ = math.Abs
	return res, nil
}

func init() {
	defaults := WorldOptions{Hours: 1200}
	register(Experiment{
		ID:       "counterfactual",
		Paper:    "§3 counterfactual: abduction–action–prediction vs ground-truth replay",
		Defaults: defaults,
		Run: func(ctx context.Context, cfg Config) (Renderable, error) {
			o, err := optionsOr(cfg, defaults)
			if err != nil {
				return nil, err
			}
			return RunCounterfactual(ctx, cfg.Pool, cfg.Seed, o)
		},
	})
}
