package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"

	"sisyphus/internal/netsim/topo"

	"sisyphus/internal/causal/synthetic"
	"sisyphus/internal/faults"
	"sisyphus/internal/ixp"
	"sisyphus/internal/mathx"
	"sisyphus/internal/netsim/scenario"
	"sisyphus/internal/parallel"
	"sisyphus/internal/pipeline"
	"sisyphus/internal/platform"
	"sisyphus/internal/probe"
)

// Table1Config parameterizes the IXP case study.
type Table1Config struct {
	Weeks     int     // total study length (default 6)
	JoinWeek  int     // week the treated ASes join the exchange (default 3)
	BinHours  float64 // panel bin width (default 12)
	Method    synthetic.Method
	Seed      uint64
	UserRate  float64 // user-initiated tests per hour per unit (default 0.25)
	WithTruth bool    // also run the no-join counterfactual world (slower)
	// AlsoJoin lists donor ASNs that also join the exchange mid-study —
	// contamination the analysis must detect (by hop matching) and exclude
	// from the donor pool, per Abadie's no-interference condition.
	AlsoJoin []topo.ASN
	// FlapLink schedules an unrelated link to flap (down 6h, up again)
	// every FlapEveryHours starting at hour 100 — background churn the
	// estimator has to shrug off. Zero disables.
	FlapLink       topo.LinkID
	FlapEveryHours float64
	// ScenarioChoice names the world to run on (default
	// scenario.SouthAfricaID); the trombone-era experiment sets
	// scenario.TromboneEraID to run the identical pipeline on the
	// historical topology. The id participates in the artifact key, not the
	// serialized result (which predates the field), so it is omitted from
	// JSON (the embedded field is `json:"-"`).
	ScenarioChoice
	// Faults, when non-nil, installs a fault injector with this
	// configuration on the measurement path (probe drops, vantage outages,
	// truncation, timestamp skew, duplicate/reordered delivery). A non-nil
	// config with every rate zero produces output bit-identical to nil —
	// the graceful-degradation baseline E15 certifies.
	Faults *faults.Config
	// Retry bounds per-probe retries when faults are injected (zero value:
	// one attempt, no retry).
	Retry probe.RetryPolicy
	// MinCoverage is the panel missing-cell policy threshold: donors whose
	// observed-bin fraction falls below it are dropped from the donor pool
	// (0 uses the synthetic package default of 0.5). The treated unit is
	// never dropped; its coverage is reported on its row instead.
	MinCoverage float64
}

// experimentOptions marks Table1Config as the typed options for the table1
// experiment (the did, chaos, and trombone-era experiments reuse the struct
// with their own defaults).
func (Table1Config) experimentOptions() {}

// WithScenario implements ScenarioOptions.
func (c Table1Config) WithScenario(id string) Options {
	c.Scenario = id
	return c
}

func (c Table1Config) withDefaults() Table1Config {
	if c.Weeks <= 0 {
		c.Weeks = 6
	}
	if c.JoinWeek <= 0 {
		c.JoinWeek = 3
	}
	if c.BinHours <= 0 {
		c.BinHours = 12
	}
	if c.UserRate <= 0 {
		c.UserRate = 0.25
	}
	if c.Scenario == "" {
		c.Scenario = scenario.SouthAfricaID
	}
	return c
}

// Table1Row is one row of the reproduced Table 1.
type Table1Row struct {
	Unit      scenario.Unit
	RTTDelta  float64 // estimated RTT change (ATT) in ms
	RMSERatio float64
	PValue    float64
	PreRMSE   float64
	// TrueDelta is the simulator's ground-truth effect from counterfactual
	// replay (only populated when WithTruth); the paper cannot have this
	// column — it is the point of building the estimators on a simulator.
	// NaN (no post-treatment samples in one of the worlds) marshals as
	// JSON null.
	TrueDelta NullableFloat
	// Crossed reports whether the IXP was ever detected on the unit's path.
	Crossed bool
	// Coverage is the fraction of panel bins backed by at least one real
	// measurement for this unit (1.0 on a clean run); the estimate above
	// stood on exactly this much data.
	Coverage float64
	// DroppedDonors lists donor units excluded by the missing-cell policy
	// for this unit's panel (under-covered under fault injection).
	DroppedDonors []string
	// EstimateError records why no estimate could be produced under heavy
	// degradation (e.g. the donor pool collapsed); numeric fields are zero.
	EstimateError string `json:",omitempty"`
	// SkippedPlacebos lists donor units whose placebo fit failed for this
	// unit's test; each one was counted conservatively (as extreme) in
	// PValue, so a nonzero count here flags a p-value that is an upper
	// bound rather than an exact placebo rank.
	SkippedPlacebos []string
	// Detail holds the full fitted synthetic control for the unit (donor
	// weights, trajectories) for verbose rendering; nil if never crossed.
	Detail *synthetic.Result `json:"-"`
}

// Table1Result is the full reproduction of Table 1.
type Table1Result struct {
	Config      Table1Config
	Rows        []Table1Row
	JoinHour    float64
	NumDonors   int
	SampleCount int
	// Coverage summarizes the ingestion stream: scheduled vs delivered vs
	// failed/truncated/duplicated records across all intents. On a clean
	// run Scheduled == Delivered.
	Coverage platform.StreamCoverage
}

// Render prints the table in the paper's format.
func (r *Table1Result) Render() string {
	t := &table{header: []string{"ASN / City", "RTT Δ (ms)", "RMSE Ratio", "p", "skipped", "true Δ (ms)"}}
	for _, row := range r.Rows {
		trueCol := "-"
		if r.Config.WithTruth {
			trueCol = fmt.Sprintf("%+.2f", row.TrueDelta)
		}
		t.add(
			fmt.Sprintf("%d / %s", row.Unit.ASN, row.Unit.City),
			fmt.Sprintf("%+.2f", row.RTTDelta),
			fmt.Sprintf("%.2f", row.RMSERatio),
			fmt.Sprintf("%.3f", row.PValue),
			fmt.Sprintf("%d", len(row.SkippedPlacebos)),
			trueCol,
		)
	}
	head := fmt.Sprintf("Table 1: estimated RTT change for paths that begin crossing NAPAfrica-JNB\n(%s synthetic control, %d donors, %d user-initiated tests, join at hour %.0f)\n\n",
		r.Config.Method, r.NumDonors, r.SampleCount, r.JoinHour)
	return head + t.String()
}

// RunTable1 executes the full pipeline of the paper's case study against the
// simulated South Africa: run six weeks of user-initiated speed tests with
// triggered traceroutes, detect the first IXP appearance per ⟨ASN, city⟩ by
// hop matching, estimate each unit's RTT change with robust synthetic
// control against the never-treated donor pool, and compute placebo-based
// p-values.
//
// The run is four pipeline stages — Scenario (simulate the worlds and
// collect measurements), Dataset (hop matching, donor-panel extraction),
// Estimator (per-unit synthetic control and placebo inference), Report
// (result assembly) — each a cancellation barrier: cancelling ctx surfaces
// ctx.Err() within one stage boundary, and the Scenario's simulation loop
// checks the context every simulated hour. Placebo fits shard across pool.
func RunTable1(ctx context.Context, pool parallel.Pool, cfg Table1Config) (*Table1Result, error) {
	cfg = cfg.withDefaults()
	totalHours := float64(cfg.Weeks) * 7 * 24
	joinHour := float64(cfg.JoinWeek) * 7 * 24

	// Campaign simulation lives behind the artifact layer: the factual and
	// counterfactual worlds are campaign artifacts keyed by ⟨scenario id,
	// seed, campaign params⟩, so suite runs that agree on those coordinates
	// (DiD's re-analysis, the trombone-era modern arm, the fault-free chaos
	// level) share one simulation instead of re-running it.
	collect := func(ctx context.Context, withJoin bool) (*scenario.World, *platform.Store, error) {
		return fetchCampaign(ctx, pool, cfg.Scenario, cfg.Seed, campaignParamsFrom(cfg, withJoin))
	}

	// Stage outputs. Each type is what crosses a seam — the artifact a
	// serving layer could cache and reuse (a collected world, a binned
	// donor panel) while re-running only the later stages.
	type worlds struct {
		s          *scenario.World
		store      *platform.Store
		truthStore *platform.Store // nil unless cfg.WithTruth
	}
	type dataset struct {
		worlds
		matcher      *ixp.Matcher
		byUnit       map[scenario.Unit][]*probe.Measurement
		donorNames   []string
		donorSeries  [][]float64
		donorMasks   [][]bool
		nBins        int
		observedMask func([]int) []bool
	}
	type estimates struct {
		dataset
		rows []Table1Row
	}

	scenarioStage := pipeline.NewStage("table1/"+pipeline.Scenario,
		func(ctx context.Context, cfg Table1Config) (worlds, error) {
			s, store, err := collect(ctx, true)
			if err != nil {
				return worlds{}, err
			}
			w := worlds{s: s, store: store}
			if cfg.WithTruth {
				// Ground-truth counterfactual world (identical seeds, no joins).
				_, w.truthStore, err = collect(ctx, false)
				if err != nil {
					return worlds{}, err
				}
			}
			return w, nil
		})

	datasetStage := pipeline.NewStage("table1/"+pipeline.Dataset,
		func(ctx context.Context, w worlds) (dataset, error) {
			matcher, err := ixp.FromTopology(w.s.Topo, w.s.IXPName)
			if err != nil {
				return dataset{}, err
			}

			// Group measurements per unit (analysis-side: only measurement
			// fields).
			byUnit := make(map[scenario.Unit][]*probe.Measurement)
			for _, m := range w.store.All() {
				u := scenario.Unit{ASN: m.SrcASN, City: m.SrcCity}
				byUnit[u] = append(byUnit[u], m)
			}

			// Donor pool: units whose paths never cross the exchange.
			// Alongside each trajectory keep its observation mask — which
			// bins were backed by real measurements — so the panel's
			// missing-cell policy can weigh donors by coverage instead of
			// trusting interpolation blindly.
			nBins := int(totalHours / cfg.BinHours)
			observedMask := func(empty []int) []bool {
				mask := make([]bool, nBins)
				for i := range mask {
					mask[i] = true
				}
				for _, b := range empty {
					mask[b] = false
				}
				return mask
			}
			d := dataset{worlds: w, matcher: matcher, byUnit: byUnit,
				nBins: nBins, observedMask: observedMask}
			for _, u := range w.s.Donors {
				if _, crossed := matcher.FirstCrossingHour(byUnit[u]); crossed {
					continue // contaminated donor: exclude per Abadie's conditions
				}
				series, empty := platform.MedianRTTSeries(byUnit[u], platform.Unit{ASN: u.ASN, City: u.City}, 0, totalHours, cfg.BinHours)
				d.donorNames = append(d.donorNames, u.String())
				d.donorSeries = append(d.donorSeries, series)
				d.donorMasks = append(d.donorMasks, observedMask(empty))
			}
			if len(d.donorNames) < 3 {
				return dataset{}, fmt.Errorf("experiments: only %d clean donors", len(d.donorNames))
			}
			return d, nil
		})

	estimatorStage := pipeline.NewStage("table1/"+pipeline.Estimator,
		func(ctx context.Context, d dataset) (estimates, error) {
			times := make([]float64, d.nBins)
			for i := range times {
				times[i] = float64(i) * cfg.BinHours
			}
			faulty := cfg.Faults != nil && cfg.Faults.Enabled()
			est := estimates{dataset: d}
			for _, u := range d.s.Treated {
				if err := ctx.Err(); err != nil {
					return estimates{}, err
				}
				row := Table1Row{Unit: u}
				firstHour, crossed := d.matcher.FirstCrossingHour(d.byUnit[u])
				row.Crossed = crossed
				if !crossed {
					est.rows = append(est.rows, row)
					continue
				}
				t0 := int(firstHour / cfg.BinHours)
				if t0 < 4 {
					t0 = 4
				}
				if t0 > d.nBins-2 {
					t0 = d.nBins - 2
				}
				treatedSeries, treatedEmpty := platform.MedianRTTSeries(d.byUnit[u], platform.Unit{ASN: u.ASN, City: u.City}, 0, totalHours, cfg.BinHours)

				units := append([]string{u.String()}, d.donorNames...)
				y := mathx.NewMatrix(len(units), d.nBins)
				y.SetRow(0, treatedSeries)
				observed := make([][]bool, 0, len(units))
				observed = append(observed, d.observedMask(treatedEmpty))
				for i, dn := range d.donorSeries {
					y.SetRow(i+1, dn)
					observed = append(observed, d.donorMasks[i])
				}
				masked, err := synthetic.NewMaskedPanel(units, times, y, observed)
				if err != nil {
					return estimates{}, err
				}
				panel, coverage, err := masked.Apply(synthetic.MissingPolicy{
					MinCoverage: cfg.MinCoverage, KeepUnits: []string{u.String()},
				})
				row.Coverage = coverage[0].Fraction() // treated unit is row 0
				for _, c := range coverage[1:] {
					if c.Dropped {
						row.DroppedDonors = append(row.DroppedDonors, c.Unit)
					}
				}
				if err == nil {
					var pl *synthetic.PlaceboResult
					pl, err = synthetic.PlaceboTest(ctx, panel, u.String(), t0, synthetic.Config{Method: cfg.Method, Pool: pool})
					if err == nil {
						row.RTTDelta = pl.Treated.ATT
						row.RMSERatio = pl.Treated.RMSERatio
						row.PValue = pl.PValue
						row.PreRMSE = pl.Treated.PreRMSE
						row.SkippedPlacebos = pl.Skipped
						row.Detail = pl.Treated
					}
				}
				if err != nil {
					// Cancellation is never a per-unit finding: it aborts the
					// stage no matter how degraded the run is.
					if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
						return estimates{}, err
					}
					// Under heavy degradation the donor pool (or the fit) can
					// collapse; that is a finding for the chaos sweep, not a
					// crash. On clean runs any estimator failure stays fatal.
					if !faulty {
						return estimates{}, fmt.Errorf("experiments: unit %v: %w", u, err)
					}
					row.EstimateError = err.Error()
				}

				if cfg.WithTruth {
					row.TrueDelta = trueDelta(d.byUnit[u], d.truthStore, u, firstHour, totalHours)
				}
				est.rows = append(est.rows, row)
			}
			return est, nil
		})

	reportStage := pipeline.NewStage("table1/"+pipeline.Report,
		func(ctx context.Context, est estimates) (*Table1Result, error) {
			return &Table1Result{Config: cfg, Rows: est.rows, JoinHour: joinHour,
				NumDonors:   len(est.donorNames),
				SampleCount: est.store.Len(), Coverage: est.store.TotalCoverage()}, nil
		})

	run := pipeline.Then(pipeline.Then(scenarioStage, datasetStage),
		pipeline.Then(estimatorStage, reportStage))
	return run.Run(ctx, cfg)
}

// trueDelta compares post-treatment median true RTT between the factual
// (joined) measurements and the counterfactual (never-joined) world. Failed
// records carry no truth and are skipped; NaN (no samples in one world)
// marshals as JSON null.
func trueDelta(factual []*probe.Measurement, truth *platform.Store, u scenario.Unit, fromHour, toHour float64) NullableFloat {
	var fact, cf []float64
	for _, m := range factual {
		if !m.Failed && m.Hour >= fromHour && m.Hour < toHour {
			fact = append(fact, m.TrueRTTms)
		}
	}
	for _, m := range truth.All() {
		if !m.Failed && m.SrcASN == u.ASN && m.SrcCity == u.City && m.Hour >= fromHour && m.Hour < toHour {
			cf = append(cf, m.TrueRTTms)
		}
	}
	if len(fact) == 0 || len(cf) == 0 {
		return NullableFloat(math.NaN())
	}
	return NullableFloat(mathx.Median(fact) - mathx.Median(cf))
}

func init() {
	defaults := Table1Config{Method: synthetic.Robust, WithTruth: true}
	register(Experiment{
		ID:       "table1",
		Paper:    "Table 1: RTT change for ⟨ASN,city⟩ pairs that begin crossing NAPAfrica-JNB",
		Defaults: defaults,
		Run: func(ctx context.Context, cfg Config) (Renderable, error) {
			o, err := optionsOr(cfg, defaults)
			if err != nil {
				return nil, err
			}
			o.Seed = cfg.Seed
			return RunTable1(ctx, cfg.Pool, o)
		},
	})
}
