package experiments

import (
	"context"
	"fmt"

	"sisyphus/internal/causal/data"
	"sisyphus/internal/causal/estimate"
	"sisyphus/internal/netsim/scenario"
	"sisyphus/internal/parallel"
)

// DiDResult contrasts difference-in-differences with synthetic control on
// the Table 1 world: DiD pools all treated units against all donors with a
// parallel-trends assumption; synthetic control builds a tailored donor
// combination per unit. Both should land near the ground-truth average
// effect in this world (where trends are near-parallel by construction);
// DiD is what breaks first when donors follow different trend mixes, which
// is the paper's reason for preferring SC.
type DiDResult struct {
	// TestCount is the number of speed tests in the panel. The JSON name
	// stays "Samples" (the field's pre-Sampler name) so the served and
	// golden documents are byte-identical; the Go name moved aside for the
	// Samples() projection method.
	TestCount int `json:"Samples"`
	// PooledDiD is the one-number average IXP effect from a 2×2 DiD.
	PooledDiD estimate.Estimate
	// SCAverage is the average per-unit synthetic-control ATT.
	SCAverage float64
	// TrueAverage is the simulator's average ground-truth effect.
	TrueAverage float64
}

// Render prints the comparison.
func (r *DiDResult) Render() string {
	t := &table{header: []string{"estimator", "average IXP effect on RTT (ms)", "SE"}}
	t.add("pooled 2×2 difference-in-differences", fmt.Sprintf("%+.3f", r.PooledDiD.Effect), fmt.Sprintf("%.3f", r.PooledDiD.SE))
	t.add("synthetic control (mean per-unit ATT)", fmt.Sprintf("%+.3f", r.SCAverage), "-")
	t.add("GROUND TRUTH (mean true Δ)", fmt.Sprintf("%+.3f", r.TrueAverage), "-")
	return fmt.Sprintf("DiD vs synthetic control on the Table 1 world\n(%d speed tests)\n\n%s", r.TestCount, t.String())
}

// DiDOptions parameterizes the DiD-vs-SC contrast: just the world to run
// the Table 1 campaign on.
type DiDOptions struct {
	ScenarioChoice
}

func (DiDOptions) experimentOptions() {}

// WithScenario implements ScenarioOptions.
func (o DiDOptions) WithScenario(id string) Options {
	o.Scenario = id
	return o
}

// RunDiD executes Table 1's data collection once and analyzes it two ways.
// The world comes from o.Scenario (default the South Africa world); any
// world Table 1 runs on works here too.
func RunDiD(ctx context.Context, pool parallel.Pool, seed uint64, o DiDOptions) (*DiDResult, error) {
	cfg := Table1Config{
		Weeks: 4, JoinWeek: 2, Seed: seed, WithTruth: true,
		ScenarioChoice: ScenarioChoice{Scenario: o.Scenario},
	}
	t1, err := RunTable1(ctx, pool, cfg)
	if err != nil {
		return nil, err
	}
	var scSum, truthSum float64
	var n int
	for _, row := range t1.Rows {
		if !row.Crossed {
			continue
		}
		scSum += row.RTTDelta
		truthSum += float64(row.TrueDelta)
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("experiments: no treated units crossed")
	}

	// Re-fetch the same world's measurements for the DiD panel: the factual
	// campaign Table 1 just analyzed, by the same artifact key (same seeds
	// ⇒ identical data), so with the cache on this is a pure hit.
	wd := cfg.withDefaults()
	joinHour := float64(wd.JoinWeek) * 7 * 24
	s, store, err := fetchCampaign(ctx, pool, wd.Scenario, wd.Seed, campaignParamsFrom(wd, true))
	if err != nil {
		return nil, err
	}

	treatedSet := make(map[scenario.Unit]bool)
	for _, u := range s.Treated {
		treatedSet[u] = true
	}
	var group, post, y []float64
	for _, m := range store.All() {
		u := scenario.Unit{ASN: m.SrcASN, City: m.SrcCity}
		g := 0.0
		if treatedSet[u] {
			g = 1
		}
		p := 0.0
		if m.Hour >= joinHour {
			p = 1
		}
		group = append(group, g)
		post = append(post, p)
		y = append(y, m.RTTms)
	}
	f, err := data.FromColumns(map[string][]float64{"g": group, "p": post, "y": y})
	if err != nil {
		return nil, err
	}
	did, err := estimate.DifferenceInDifferences(f, "g", "p", "y")
	if err != nil {
		return nil, err
	}
	return &DiDResult{
		TestCount:   store.Len(),
		PooledDiD:   did,
		SCAverage:   scSum / float64(n),
		TrueAverage: truthSum / float64(n),
	}, nil
}

func init() {
	defaults := DiDOptions{}
	register(Experiment{
		ID:       "did",
		Paper:    "methodological contrast: pooled DiD vs per-unit synthetic control on Table 1 data",
		Defaults: defaults,
		Run: func(ctx context.Context, cfg Config) (Renderable, error) {
			o, err := optionsOr(cfg, defaults)
			if err != nil {
				return nil, err
			}
			return RunDiD(ctx, cfg.Pool, cfg.Seed, o)
		},
	})
}
