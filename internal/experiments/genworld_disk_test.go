package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"sisyphus/internal/netsim/scenario"
)

// TestGeneratedWorldArtifactRoundTrip: a generated world must flow through
// the disk tier's world codec exactly like a canned one — decode restores a
// structurally identical export and re-encoding is byte-identical, so a
// gen/<cfghash> world persisted by one sweep is safely reloadable by the
// next. Registering the spec also folds the gen id into scenario.IDs(), so
// the package's registry-wide codec tests cover it from here on.
func TestGeneratedWorldArtifactRoundTrip(t *testing.T) {
	id, err := scenario.RegisterGen(scenario.DefaultGenSpec())
	if err != nil {
		t.Fatal(err)
	}
	w, err := scenario.Build(id)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeWorldArtifact(w)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeWorldArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w.Export(), back.Export()) {
		t.Fatalf("%s: generated world drifted through the codec", id)
	}
	again, err := EncodeWorldArtifact(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("%s: decode→encode not byte-identical (%d vs %d bytes)", id, len(data), len(again))
	}
	// Two independent builds of the same gen id must encode to the same
	// bytes: the content-addressed id really is the artifact's identity.
	w2, err := scenario.Build(id)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := EncodeWorldArtifact(w2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("%s: two builds of one gen id encode differently", id)
	}
}
