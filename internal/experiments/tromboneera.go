package experiments

import (
	"context"
	"fmt"

	"sisyphus/internal/causal/synthetic"
	"sisyphus/internal/netsim/scenario"
	"sisyphus/internal/parallel"
)

// TromboneEraResult contrasts the same IXP-join intervention across two
// eras of the simulated South African Internet. In the trombone era, local
// content was only reachable via Europe, so joining the exchange removed an
// intercontinental round trip — the experience that formed the operational
// belief Table 1 tests. In the modern era (Table 1's world) domestic
// transit already keeps paths local, and the same intervention moves
// single-digit milliseconds. Same treatment, same estimator, different
// world: the belief was once true and is now mostly folklore — the paper's
// Sisyphus point in one table.
type TromboneEraResult struct {
	Era    *Table1Result
	Modern *Table1Result
}

// Render prints the contrast.
func (r *TromboneEraResult) Render() string {
	t := &table{header: []string{"ASN / City", "trombone-era Δ (ms)", "p", "modern Δ (ms)", "p"}}
	modernByUnit := make(map[scenario.Unit]Table1Row)
	for _, row := range r.Modern.Rows {
		modernByUnit[row.Unit] = row
	}
	var eraSum, modSum float64
	for _, row := range r.Era.Rows {
		m := modernByUnit[row.Unit]
		t.add(
			fmt.Sprintf("%d / %s", row.Unit.ASN, row.Unit.City),
			fmt.Sprintf("%+.1f", row.RTTDelta), fmt.Sprintf("%.3f", row.PValue),
			fmt.Sprintf("%+.1f", m.RTTDelta), fmt.Sprintf("%.3f", m.PValue),
		)
		eraSum += row.RTTDelta
		modSum += m.RTTDelta
	}
	n := float64(len(r.Era.Rows))
	return fmt.Sprintf(`The same intervention across two Internets (§1/§3 context for Table 1)

%s
mean effect: trombone era %+.1f ms, modern era %+.1f ms (%.0fx smaller)

The belief "joining the IXP cuts latency" formed when it removed a
round trip to Europe. Table 1 measures the marginal joiner of a mature
exchange — the same action, a different causal system. Re-measuring
without re-modelling is how the field ends up pushing the same boulder.
`, t.String(), eraSum/n, modSum/n, (eraSum/n)/(modSum/n))
}

// RunTromboneEra runs the identical Table 1 pipeline on both worlds.
func RunTromboneEra(ctx context.Context, pool parallel.Pool, seed uint64) (*TromboneEraResult, error) {
	era, err := RunTable1(ctx, pool, Table1Config{
		Weeks: 4, JoinWeek: 2, Seed: seed, Method: synthetic.Robust,
		ScenarioChoice: ScenarioChoice{Scenario: scenario.TromboneEraID},
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: trombone era: %w", err)
	}
	modern, err := RunTable1(ctx, pool, Table1Config{
		Weeks: 4, JoinWeek: 2, Seed: seed, Method: synthetic.Robust,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: modern era: %w", err)
	}
	return &TromboneEraResult{Era: era, Modern: modern}, nil
}

func init() {
	register(Experiment{
		ID:    "tromboneera",
		Paper: "historical contrast: why the IXP belief formed (trombone era) vs what Table 1 measures",
		Run: func(ctx context.Context, cfg Config) (Renderable, error) {
			if err := noOptions("tromboneera", cfg); err != nil {
				return nil, err
			}
			return RunTromboneEra(ctx, cfg.Pool, cfg.Seed)
		},
	})
}
