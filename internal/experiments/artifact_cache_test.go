package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"

	"sisyphus/internal/artifact"
	"sisyphus/internal/netsim/scenario"
	"sisyphus/internal/obs"
	"sisyphus/internal/parallel"
	"sisyphus/internal/probe"
)

// cachedRun is one full cached suite run plus its instrumentation.
type cachedRun struct {
	outs  []RunOutcome
	store *artifact.Store
	rec   *obs.Recorder
}

// cachedSuite runs the full seed-42 suite exactly once with a live artifact
// store and a metrics recorder, shared by the cache-equivalence and
// exactly-once assertions below.
var cachedSuite = sync.OnceValues(func() (cachedRun, error) {
	r := cachedRun{store: artifact.NewStore(), rec: obs.NewRecorder()}
	ctx := obs.With(context.Background(), r.rec)
	var err error
	r.outs, err = RunAll(ctx, Config{Seed: 42, Pool: parallel.Pool{}, Artifacts: r.store})
	return r, err
})

// TestSuiteCachedTextMatchesGolden is the tentpole's headline acceptance
// criterion, the cache-on twin of TestSuiteTextMatchesGolden: with every
// world, RIB, and campaign flowing through the artifact store, the rendered
// suite must stay byte-identical to the same pinned seed-42 golden the
// uncached run is held to.
func TestSuiteCachedTextMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run")
	}
	want, err := os.ReadFile("testdata/all_seed42.golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	r, err := cachedSuite()
	if err != nil {
		t.Fatal(err)
	}
	got := suiteText(t, r.outs)
	if !bytes.Equal(got, want) {
		t.Fatalf("cached suite text drifted from golden (%d bytes vs %d): the artifact layer changed experiment output", len(got), len(want))
	}
}

// TestSuiteCachedJSONMatchesGolden is the same pin for the JSON surface:
// full float precision, so a 1-ULP drift anywhere in a cached artifact
// shows up here even if the rounded text tables hide it.
func TestSuiteCachedJSONMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run")
	}
	want, err := os.ReadFile("testdata/all_seed42.golden.json")
	if err != nil {
		t.Fatal(err)
	}
	r, err := cachedSuite()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, oc := range r.outs {
		if oc.Err != nil {
			t.Fatalf("%s: %v", oc.Exp.ID, oc.Err)
		}
		buf.WriteString(oc.Exp.Header())
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(oc.Res); err != nil {
			t.Fatalf("%s: %v", oc.Exp.ID, err)
		}
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("cached suite JSON drifted from golden (%d bytes vs %d)", buf.Len(), len(want))
	}
}

// TestSuiteCachedParallelMatchesGolden re-runs the cached suite across a
// 4-worker pool: concurrent experiments racing into the same store must
// still render the pinned bytes (singleflight + fork discipline at work).
func TestSuiteCachedParallelMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run")
	}
	want, err := os.ReadFile("testdata/all_seed42.golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	outs, err := RunAll(context.Background(), Config{
		Seed: 42, Pool: parallel.NewPool(4), Artifacts: artifact.NewStore(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := suiteText(t, outs)
	if !bytes.Equal(got, want) {
		t.Fatalf("cached parallel suite drifted from golden (%d bytes vs %d)", len(got), len(want))
	}
}

// TestCachedSuiteBuildsEachKeyOnce pins the build-once property: across the
// whole cached suite every ⟨kind, scenario, seed, config⟩ coordinate is
// built exactly once, asserted both on the store's per-key counters and on
// the obs cache.miss.* counters summed across experiment scopes.
func TestCachedSuiteBuildsEachKeyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run")
	}
	r, err := cachedSuite()
	if err != nil {
		t.Fatal(err)
	}
	perKey := r.store.PerKey()
	if len(perKey) == 0 {
		t.Fatal("cached suite recorded no artifact keys")
	}
	var hits int64
	for key, ks := range perKey {
		if ks.Builds != 1 {
			t.Errorf("%s built %d times, want exactly 1", key, ks.Builds)
		}
		if ks.Misses != 1 {
			t.Errorf("%s missed %d times, want exactly 1", key, ks.Misses)
		}
		hits += ks.Hits
	}
	if hits == 0 {
		t.Error("no cache hits across the suite: nothing was shared")
	}
	// The same property through the observability layer: each cache.miss.<key>
	// counter, summed over experiment scopes, is exactly 1.
	missTotals := make(map[string]float64)
	for _, metrics := range r.rec.Metrics() {
		for name, v := range metrics {
			if strings.HasPrefix(name, "cache.miss.") {
				missTotals[strings.TrimPrefix(name, "cache.miss.")] += v
			}
		}
	}
	if len(missTotals) != len(perKey) {
		t.Errorf("obs saw %d distinct keys, store saw %d", len(missTotals), len(perKey))
	}
	for key, n := range missTotals {
		if n != 1 {
			t.Errorf("obs counted %v misses for %s, want exactly 1", n, key)
		}
	}
}

// TestFetchWorldMutationSafety is the domain-level fork battery: mutate
// everything reachable from one fetched world/RIB, then refetch and verify
// the stored artifacts were untouched.
func TestFetchWorldMutationSafety(t *testing.T) {
	store := artifact.NewStore()
	ctx := artifact.With(context.Background(), store)
	pool := parallel.Pool{}

	s1, rib1, err := fetchWorld(ctx, pool, scenario.SouthAfricaID)
	if err != nil {
		t.Fatal(err)
	}
	if rib1 == nil {
		t.Fatal("cached fetchWorld must return a RIB")
	}
	origTreated := s1.TreatedASNs[0]
	origDonors := len(s1.Donors)

	// Mutate the scenario metadata slices.
	s1.TreatedASNs[0] = 65000
	s1.Treated[0].City = "Nowhere"
	s1.ContentASNs[0] = 65001
	s1.Donors = append(s1.Donors, scenario.Unit{ASN: 65002, City: "Nowhere"})
	// Mutate the topology itself: graft a new IXP member.
	if _, err := s1.Topo.JoinIXP(s1.IXPName, origTreated); err != nil {
		t.Fatal(err)
	}
	// Mutate the RIB through the sanctioned write path. MutableLookup is
	// the copy-on-write promotion point: the fork's table for this
	// destination goes private, the stored original must stay converged.
	if rt := rib1.MutableLookup(3741, scenario.BigContent); rt != nil && len(rt.Path) > 0 {
		rt.Path[0] = 65003
		rt.LocalPref = -1
	}

	s2, rib2, err := fetchWorld(ctx, pool, scenario.SouthAfricaID)
	if err != nil {
		t.Fatal(err)
	}
	if s2 == s1 || s2.Topo == s1.Topo || rib2 == rib1 {
		t.Fatal("refetch returned shared pointers, not forks")
	}
	if s2.TreatedASNs[0] != origTreated || s2.Treated[0].City == "Nowhere" {
		t.Fatalf("treated-unit mutation leaked into the store: %v", s2.TreatedASNs)
	}
	if s2.ContentASNs[0] == 65001 || len(s2.Donors) != origDonors {
		t.Fatal("content/donor mutation leaked into the store")
	}
	if _, member := s2.Topo.IXPMemberIndex(s2.IXPName, origTreated); member {
		t.Fatal("topology mutation (IXP join) leaked into the store")
	}
	rt := rib2.Lookup(3741, scenario.BigContent)
	if rt == nil {
		t.Fatal("refetched RIB lost the 3741 → BigContent route")
	}
	if rt.LocalPref == -1 || (len(rt.Path) > 0 && rt.Path[0] == 65003) {
		t.Fatalf("RIB mutation leaked into the store: %+v", rt)
	}
	// The store was consulted: one build per key, later fetches were hits.
	for key, ks := range store.PerKey() {
		if ks.Builds != 1 {
			t.Errorf("%s built %d times during the battery, want 1", key, ks.Builds)
		}
	}
}

// TestFetchCampaignMutationSafety runs a short campaign through the cache,
// mauls the returned measurement store and world, and verifies a refetch
// sees none of it.
func TestFetchCampaignMutationSafety(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a one-week campaign")
	}
	store := artifact.NewStore()
	ctx := artifact.With(context.Background(), store)
	pool := parallel.Pool{}
	p := campaignParams{Weeks: 1, JoinWeek: 0, UserRate: 0.25, Join: false}

	s1, ms1, err := fetchCampaign(ctx, pool, scenario.SouthAfricaID, 42, p)
	if err != nil {
		t.Fatal(err)
	}
	if ms1.Len() == 0 {
		t.Fatal("campaign produced no measurements")
	}
	origLen := ms1.Len()
	m := ms1.All()[0]
	origRTT := m.RTTms
	origHops := len(m.Hops)

	// Maul the fetched copies through the supported mutators. Measurement
	// interiors are immutable after ingestion (the copy-on-write fork
	// shares them with the store), so the store-side mutation is an Add —
	// which must reallocate, never scribble into the shared backing array.
	if err := ms1.Add(&probe.Measurement{ID: 1 << 30, Intent: probe.IntentBaseline, Hour: 1}); err != nil {
		t.Fatal(err)
	}
	s1.TreatedASNs[0] = 65000
	s1.Topo.SetLinkUp(s1.Topo.Links()[0].ID, false)

	s2, ms2, err := fetchCampaign(ctx, pool, scenario.SouthAfricaID, 42, p)
	if err != nil {
		t.Fatal(err)
	}
	if ms2 == ms1 || s2 == s1 {
		t.Fatal("refetch returned shared pointers, not forks")
	}
	if ms2.Len() != origLen {
		t.Fatalf("store length drifted: %d vs %d", ms2.Len(), origLen)
	}
	m2 := ms2.All()[0]
	if m2.RTTms != origRTT || len(m2.Hops) != origHops {
		t.Fatalf("measurement mutation leaked into the store: rtt=%v hops=%d", m2.RTTms, len(m2.Hops))
	}
	if got := ms2.All()[ms2.Len()-1].ID; got == 1<<30 {
		t.Fatal("fork's Add leaked into the store")
	}
	if s2.TreatedASNs[0] == 65000 {
		t.Fatal("world mutation leaked into the store")
	}
	if !s2.Topo.Links()[0].Up {
		t.Fatal("fork's link-down leaked into the store")
	}
	// Exactly one campaign simulation happened.
	for key, ks := range store.PerKey() {
		if key.Kind == kindCampaign && ks.Builds != 1 {
			t.Errorf("%s built %d times, want 1", key, ks.Builds)
		}
	}
}

// TestFlapScheduleClosedForm is the regression test for the flap-drift bug:
// the schedule accumulated h += period per flap, compounding one rounding
// error per step when the period is not exactly representable. The schedule
// must equal the closed form 100 + i*period at every index.
func TestFlapScheduleClosedForm(t *testing.T) {
	const period = 0.1 // not representable in binary: accumulation drifts
	const total = 250.0
	hs := flapHours(total, period)
	if len(hs) == 0 {
		t.Fatal("empty flap schedule")
	}
	acc, drifted := 100.0, false
	for i, h := range hs {
		if want := 100 + float64(i)*period; h != want {
			t.Fatalf("flap %d at hour %v, want closed-form %v", i, h, want)
		}
		if h >= total {
			t.Fatalf("flap %d at hour %v past the horizon %v", i, h, total)
		}
		if acc != h {
			drifted = true
		}
		acc += period
	}
	// The accumulated schedule genuinely diverges over this horizon — the
	// bug was observable, not theoretical.
	if !drifted {
		t.Fatal("accumulated schedule never drifted; pick a period that exposes the bug")
	}
	// And the representable production value (72h) is unaffected either
	// way, which is why the pinned goldens cannot move.
	for i, h := range flapHours(24*7*4, 72) {
		if want := 100 + float64(i)*72; h != want {
			t.Fatalf("72h flap %d at %v, want %v", i, h, want)
		}
	}
	if flapHours(total, 0) != nil || flapHours(total, -1) != nil {
		t.Fatal("non-positive period must schedule nothing")
	}
}

// TestCachedSuiteResidencyCountsAllKinds pins the LRU undercount fix: every
// artifact kind now reports a nonzero size, so the store's byte accounting
// reflects worlds and RIBs, not just campaign measurement stores.
func TestCachedSuiteResidencyCountsAllKinds(t *testing.T) {
	store := artifact.NewStore()
	ctx := artifact.With(context.Background(), store)
	if _, _, err := fetchWorld(ctx, parallel.Pool{}, scenario.SouthAfricaID); err != nil {
		t.Fatal(err)
	}
	st := store.Stats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want world + rib", st.Entries)
	}
	// Both the world and the RIB must contribute bytes: before the fix
	// their specs passed no Size and the LRU bound saw zero for either.
	if st.Bytes < 2048 {
		t.Fatalf("resident bytes = %d: world/rib sizes missing from the byte bound", st.Bytes)
	}
}
