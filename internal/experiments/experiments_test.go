package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"sisyphus/internal/causal/synthetic"
	"sisyphus/internal/netsim/scenario"
	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/parallel"
)

func TestRegistryListsAllExperiments(t *testing.T) {
	want := []string{"cellular", "chaos", "collider", "confounding",
		"counterfactual", "did", "exposure", "familyknob", "instrument",
		"intent", "mlab", "power", "rootcause", "table1", "tromboneera"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("ids = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ids = %v want %v", got, want)
		}
	}
	if _, err := Get("table1"); err != nil {
		t.Fatal(err)
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
	if len(All()) != len(want) {
		t.Fatal("All() size mismatch")
	}
}

func TestTableRenderer(t *testing.T) {
	tb := &table{header: []string{"a", "bb"}}
	tb.add("xxx", "y")
	out := tb.String()
	if !strings.Contains(out, "xxx") || !strings.Contains(out, "---") {
		t.Fatalf("table = %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table lines = %d", len(lines))
	}
}

func TestTable1ShapeMatchesPaper(t *testing.T) {
	res, err := RunTable1(context.Background(), parallel.Pool{}, Table1Config{Weeks: 4, JoinWeek: 2, Seed: 1, Method: synthetic.Robust, WithTruth: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d want 8 (Table 1)", len(res.Rows))
	}
	var negative, positive, tracked int
	for _, row := range res.Rows {
		if !row.Crossed {
			t.Fatalf("unit %v never crossed the IXP", row.Unit)
		}
		// Effects must be in the paper's small-magnitude regime, not the
		// tromboning regime (tens of ms).
		if math.Abs(row.RTTDelta) > 15 {
			t.Fatalf("unit %v effect %v ms outside paper-scale range", row.Unit, row.RTTDelta)
		}
		if row.RTTDelta < 0 {
			negative++
		} else {
			positive++
		}
		if row.PValue <= 0 || row.PValue > 1 {
			t.Fatalf("p = %v", row.PValue)
		}
		if row.RMSERatio <= 0 {
			t.Fatalf("rmse ratio = %v", row.RMSERatio)
		}
		// Estimates must track ground truth within a few ms.
		if !row.TrueDelta.IsNaN() && math.Abs(row.RTTDelta-float64(row.TrueDelta)) < 3 {
			tracked++
		}
	}
	// Paper shape: mixed signs ("RTT occasionally decreases … neither
	// consistent nor robust").
	if negative == 0 || positive == 0 {
		t.Fatalf("expected mixed signs, got %d negative / %d positive", negative, positive)
	}
	if tracked < 6 {
		t.Fatalf("only %d/8 estimates track ground truth", tracked)
	}
	out := res.Render()
	for _, want := range []string{"NAPAfrica", "3741 / East London", "328745 / Johannesburg", "RMSE Ratio"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

func TestTable1DetectsTreatmentFromHops(t *testing.T) {
	// With no join scheduled (JoinWeek beyond the horizon), nothing crosses.
	res, err := RunTable1(context.Background(), parallel.Pool{}, Table1Config{Weeks: 2, JoinWeek: 8, Seed: 2, Method: synthetic.Robust})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Crossed {
			t.Fatalf("unit %v crossed without a join event", row.Unit)
		}
	}
}

func TestConfoundingRecoversGroundTruth(t *testing.T) {
	res, err := RunConfounding(context.Background(), parallel.Pool{}, 7, WorldOptions{Hours: 900})
	if err != nil {
		t.Fatal(err)
	}
	// Naive must be biased toward zero / wrong vs truth; stratified must be
	// within 25% of the ground-truth ATE.
	if math.Abs(res.Naive.Effect-res.TrueEffect) < math.Abs(res.Stratified.Effect-res.TrueEffect) {
		t.Fatalf("naive (%v) beat stratified (%v) against truth (%v)",
			res.Naive.Effect, res.Stratified.Effect, res.TrueEffect)
	}
	if math.Abs(res.Stratified.Effect-res.TrueEffect) > 0.3*math.Abs(res.TrueEffect)+0.5 {
		t.Fatalf("stratified %v too far from truth %v", res.Stratified.Effect, res.TrueEffect)
	}
	if !strings.Contains(res.DAGAnalysis, "R <- C -> L") {
		t.Fatalf("dag analysis = %q", res.DAGAnalysis)
	}
	if res.RouteShare <= 0.05 || res.RouteShare >= 0.95 {
		t.Fatalf("route share = %v; treatment needs variation", res.RouteShare)
	}
}

func TestColliderFabricatesAssociation(t *testing.T) {
	res, err := RunCollider(context.Background(), parallel.Pool{}, 7, 2500)
	if err != nil {
		t.Fatal(err)
	}
	// Truth: essentially no association in the population.
	if math.Abs(res.PopulationCorr) > 0.08 {
		t.Fatalf("population corr = %v; world should have none", res.PopulationCorr)
	}
	// Selection: a clear explain-away shift (conditioning on the collider
	// pushes the association negative relative to the population).
	if res.SelectedCorr >= res.PopulationCorr-0.05 {
		t.Fatalf("selection did not shift the association: pop %v sel %v", res.PopulationCorr, res.SelectedCorr)
	}
	if res.SelChangeDegraded >= res.SelNoChangeDegraded {
		t.Fatal("explain-away pattern missing in conditional shares")
	}
	if len(res.Warnings) == 0 {
		t.Fatal("no DAG warning produced")
	}
}

func TestCellularSignReversal(t *testing.T) {
	res, err := RunCellular(context.Background(), 7, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if res.NaiveSlope.Effect <= 0 {
		t.Fatalf("naive slope %v should be positive (the paper's anomaly)", res.NaiveSlope.Effect)
	}
	if math.Abs(res.AdjustedSlope.Effect-res.TrueCoefficient) > 0.05 {
		t.Fatalf("adjusted slope %v want ≈%v", res.AdjustedSlope.Effect, res.TrueCoefficient)
	}
	if res.StratifiedSlope.Effect >= 0 {
		t.Fatalf("stratified slope %v should recover the negative effect", res.StratifiedSlope.Effect)
	}
}

func TestMLabRandomizationUnbiased(t *testing.T) {
	res, err := RunMLab(context.Background(), parallel.Pool{}, 7, WorldOptions{Hours: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Randomized.Effect-res.TrueEffect) > 0.6 {
		t.Fatalf("randomized %v vs truth %v", res.Randomized.Effect, res.TrueEffect)
	}
	// Self-selection must be further from truth than randomization.
	if math.Abs(res.SelfSelected.Effect-res.TrueEffect) <= math.Abs(res.Randomized.Effect-res.TrueEffect) {
		t.Fatalf("self-selected (%v) not worse than randomized (%v) vs truth (%v)",
			res.SelfSelected.Effect, res.Randomized.Effect, res.TrueEffect)
	}
}

func TestInstrumentValidBeatsInvalid(t *testing.T) {
	res, err := RunInstrument(context.Background(), parallel.Pool{}, 7, WorldOptions{Hours: 1500})
	if err != nil {
		t.Fatal(err)
	}
	errValid := math.Abs(res.ValidIV.Effect - res.TrueEffect)
	errInvalid := math.Abs(res.InvalidIV.Effect - res.TrueEffect)
	errNaive := math.Abs(res.NaiveOLS.Effect - res.TrueEffect)
	if errValid >= errInvalid {
		t.Fatalf("valid IV error %v not better than invalid %v", errValid, errInvalid)
	}
	if errValid >= errNaive {
		t.Fatalf("valid IV error %v not better than naive %v", errValid, errNaive)
	}
	if res.ValidIV.FirstStageF < 10 {
		t.Fatalf("weak instrument: F = %v", res.ValidIV.FirstStageF)
	}
	if len(res.DAGValid) != 1 || res.DAGValid[0] != "Zmaint" {
		t.Fatalf("dag instruments = %v", res.DAGValid)
	}
	if len(res.DAGViolated) == 0 {
		t.Fatal("no exclusion violations reported for the invalid candidate")
	}
}

func TestCounterfactualAgreesWithReplay(t *testing.T) {
	res, err := RunCounterfactual(context.Background(), parallel.Pool{}, 7, WorldOptions{Hours: 800})
	if err != nil {
		t.Fatal(err)
	}
	// The SCM-based attribution and the ground-truth replay must agree on
	// the qualitative answer: the reroute explains only a small part of the
	// spike (both attributions well below half the factual RTT).
	if math.Abs(res.AttributionSCM) > res.FactualRTT/2 {
		t.Fatalf("SCM attributes too much: %v of %v", res.AttributionSCM, res.FactualRTT)
	}
	if math.Abs(res.AttributionSCM-res.AttributionTru) > 3 {
		t.Fatalf("SCM attribution %v vs truth %v", res.AttributionSCM, res.AttributionTru)
	}
	if res.ReplayTruth <= 0 || res.SCMPredicted <= 0 {
		t.Fatalf("degenerate counterfactuals: %v %v", res.ReplayTruth, res.SCMPredicted)
	}
}

func TestExposureIsNotImpact(t *testing.T) {
	res, err := RunExposure(context.Background(), parallel.Pool{}, 7, ExposureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RankFlips == 0 {
		t.Fatal("exposure and impact rankings agree everywhere; the box's point is lost")
	}
	// There must exist a high-exposure zero-unreachable link AND a
	// low-exposure link that partitions something.
	var highExpNoLoss, lowExpLoss bool
	for _, row := range res.Rows {
		if row.Exposure >= 10 && row.Unreachable == 0 {
			highExpNoLoss = true
		}
		if row.Exposure <= 2 && row.Unreachable > 0 {
			lowExpLoss = true
		}
	}
	if !highExpNoLoss || !lowExpLoss {
		t.Fatalf("missing contrast rows: %+v", res.Rows)
	}
}

func TestIntentTagsSeparateBias(t *testing.T) {
	res, err := RunIntent(context.Background(), parallel.Pool{}, 7, 1200)
	if err != nil {
		t.Fatal(err)
	}
	biasBase := math.Abs(res.BaselineMean - res.TrueMeanRTT)
	biasUser := math.Abs(res.UserMean - res.TrueMeanRTT)
	if biasBase > 0.25 {
		t.Fatalf("baseline should be unbiased: %v", biasBase)
	}
	if biasUser < biasBase+0.2 {
		t.Fatalf("user-initiated should be clearly biased: %v vs %v", biasUser, biasBase)
	}
	if res.TriggeredCount == 0 {
		t.Fatal("conditional activation captured no route changes")
	}
	if res.BaselineCount == 0 || res.UserCount == 0 {
		t.Fatal("empty strata")
	}
}

func TestAllRegisteredExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	// Smoke every registry entry through the same path the CLI uses.
	for _, id := range []string{"cellular", "collider", "exposure", "mlab", "intent"} {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(context.Background(), Config{Seed: 11})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.Render() == "" {
			t.Fatalf("%s rendered empty", id)
		}
	}
}

func TestRootCauseAttribution(t *testing.T) {
	res, err := RunRootCause(context.Background(), parallel.Pool{}, 5, RootCauseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SymptomUnreachable < 20 {
		t.Fatalf("outage too small: %d units", res.SymptomUnreachable)
	}
	// The counterfactuals must separate the candidates cleanly.
	if res.WithoutCongestion < res.SymptomUnreachable {
		t.Fatalf("removing the red herring changed the outage: %d vs %d",
			res.WithoutCongestion, res.SymptomUnreachable)
	}
	if res.WithoutLinkCut != 0 {
		t.Fatalf("removing the true cause left %d units dark", res.WithoutLinkCut)
	}
	// The misleading correlation must be present (that is the point).
	if res.CorrCongestion < 0.3 {
		t.Fatalf("corr = %v; the red herring should correlate with the symptom", res.CorrCongestion)
	}
	if !strings.Contains(res.Render(), "Verdict") {
		t.Fatal("render missing verdict")
	}
}

func TestFamilyKnobIVMatchesTruth(t *testing.T) {
	res, err := RunFamilyKnob(context.Background(), parallel.Pool{}, 4, WorldOptions{Hours: 700})
	if err != nil {
		t.Fatal(err)
	}
	if res.FamilyIV.FirstStageF < 50 {
		t.Fatalf("family toggle should be a very strong instrument: F=%v", res.FamilyIV.FirstStageF)
	}
	if math.Abs(res.FamilyIV.Effect-res.TrueEffect) > 0.5 {
		t.Fatalf("family IV %v vs truth %v", res.FamilyIV.Effect, res.TrueEffect)
	}
	if math.Abs(res.FamilyIV.Effect-res.TrueEffect) > math.Abs(res.NaiveOLS.Effect-res.TrueEffect) {
		t.Fatalf("IV (%v) should beat naive (%v) against truth (%v)",
			res.FamilyIV.Effect, res.NaiveOLS.Effect, res.TrueEffect)
	}
}

func TestDiDAndSCAgreeOnDirection(t *testing.T) {
	res, err := RunDiD(context.Background(), parallel.Pool{}, 4, DiDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TestCount == 0 {
		t.Fatal("no samples")
	}
	// Both estimators must agree with the ground truth's sign and be within
	// a couple ms of it (the average effect is small by design).
	if res.TrueAverage >= 0 {
		t.Fatalf("expected a net RTT reduction, truth = %v", res.TrueAverage)
	}
	for name, v := range map[string]float64{"DiD": res.PooledDiD.Effect, "SC": res.SCAverage} {
		if v >= 0 {
			t.Fatalf("%s sign disagrees with truth: %v", name, v)
		}
		if math.Abs(v-res.TrueAverage) > 2.5 {
			t.Fatalf("%s = %v too far from truth %v", name, v, res.TrueAverage)
		}
	}
}

func TestTable1ExcludesContaminatedDonors(t *testing.T) {
	// Donor AS36874 (Johannesburg) secretly joins the exchange too. The
	// pipeline must detect the crossing from its traceroutes and drop it
	// from the donor pool rather than let a treated unit serve as control.
	clean, err := RunTable1(context.Background(), parallel.Pool{}, Table1Config{Weeks: 3, JoinWeek: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := RunTable1(context.Background(), parallel.Pool{}, Table1Config{Weeks: 3, JoinWeek: 2, Seed: 5, AlsoJoin: []topo.ASN{36874}})
	if err != nil {
		t.Fatal(err)
	}
	if dirty.NumDonors != clean.NumDonors-1 {
		t.Fatalf("donor pool %d → %d; contaminated donor not excluded", clean.NumDonors, dirty.NumDonors)
	}
	if len(dirty.Rows) != 8 {
		t.Fatalf("rows = %d", len(dirty.Rows))
	}
}

func TestTable1SurvivesBackgroundLinkFlaps(t *testing.T) {
	// Flap a redundant content-side link throughout the study: the
	// estimator must still produce all rows with sane diagnostics.
	s, err := scenario.BuildSouthAfrica()
	if err != nil {
		t.Fatal(err)
	}
	rel, err := s.Topo.Relationships()
	if err != nil {
		t.Fatal(err)
	}
	flap := rel.Links[scenario.BigContent][scenario.ZATransitA][1] // Durban leg
	res, err := RunTable1(context.Background(), parallel.Pool{}, Table1Config{
		Weeks: 3, JoinWeek: 2, Seed: 6,
		FlapLink: flap, FlapEveryHours: 72,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.Crossed {
			t.Fatalf("unit %v lost treatment detection under churn", row.Unit)
		}
		if math.IsNaN(row.RTTDelta) || math.IsInf(row.RTTDelta, 0) {
			t.Fatalf("unit %v produced %v under churn", row.Unit, row.RTTDelta)
		}
	}
}

func TestPowerCurveShape(t *testing.T) {
	res, err := RunPower(context.Background(), parallel.Pool{}, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Power must be (weakly) increasing in effect size and reach high
	// values for large effects.
	for i := 1; i < len(res.Power); i++ {
		if res.Power[i] < res.Power[i-1]-0.15 {
			t.Fatalf("power curve non-monotone: %v", res.Power)
		}
	}
	if res.Power[len(res.Power)-1] < 0.8 {
		t.Fatalf("5ms effect power = %v", res.Power[len(res.Power)-1])
	}
	if res.MDE80 <= 0 || res.MDE80 > 5 {
		t.Fatalf("MDE = %v", res.MDE80)
	}
	if !strings.Contains(res.Render(), "minimum detectable effect") {
		t.Fatal("render missing MDE")
	}
}

func TestTromboneEraContrast(t *testing.T) {
	res, err := RunTromboneEra(context.Background(), parallel.Pool{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Era.Rows) != 8 || len(res.Modern.Rows) != 8 {
		t.Fatalf("rows: era %d modern %d", len(res.Era.Rows), len(res.Modern.Rows))
	}
	var eraSum, modSum float64
	for i := range res.Era.Rows {
		if !res.Era.Rows[i].Crossed {
			t.Fatalf("era unit %v never crossed", res.Era.Rows[i].Unit)
		}
		eraSum += res.Era.Rows[i].RTTDelta
		modSum += res.Modern.Rows[i].RTTDelta
		// Trombone-era effects are intercontinental-scale drops.
		if res.Era.Rows[i].RTTDelta > -50 {
			t.Fatalf("era unit %v effect only %v ms", res.Era.Rows[i].Unit, res.Era.Rows[i].RTTDelta)
		}
		if res.Era.Rows[i].PValue > 0.1 {
			t.Fatalf("era effect not significant: %v", res.Era.Rows[i])
		}
	}
	// The era effect must dwarf the modern one by at least an order of
	// magnitude — the experiment's entire point.
	if eraSum/modSum < 10 && modSum < 0 {
		t.Fatalf("era mean %v not >>> modern mean %v", eraSum/8, modSum/8)
	}
	if !strings.Contains(res.Render(), "two Internets") {
		t.Fatal("render missing headline")
	}
}
