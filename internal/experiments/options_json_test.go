package experiments

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestOptionsFromJSONRoundTrip pins the decode path against every
// registered experiment: the marshaled defaults must decode back equal, so
// a client can GET an options shape, edit one knob, and send it back.
func TestOptionsFromJSONRoundTrip(t *testing.T) {
	for _, e := range All() {
		if e.Defaults == nil {
			continue
		}
		t.Run(e.ID, func(t *testing.T) {
			raw, err := json.Marshal(e.Defaults)
			if err != nil {
				t.Fatal(err)
			}
			got, err := OptionsFromJSON(e.ID, raw)
			if err != nil {
				t.Fatalf("decoding marshaled defaults: %v", err)
			}
			if !reflect.DeepEqual(got, e.Defaults) {
				t.Errorf("round trip drifted: got %+v, want %+v", got, e.Defaults)
			}
		})
	}
}

// TestOptionsFromJSONPartial checks that an options document only needs the
// knobs it turns: omitted fields keep the registered defaults.
func TestOptionsFromJSONPartial(t *testing.T) {
	got, err := OptionsFromJSON("confounding", []byte(`{"Hours": 123}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.(WorldOptions).Hours != 123 {
		t.Errorf("Hours = %d, want 123", got.(WorldOptions).Hours)
	}

	// table1 has many fields; setting one must leave the rest at defaults.
	def, err := Get("table1")
	if err != nil {
		t.Fatal(err)
	}
	got, err = OptionsFromJSON("table1", []byte(`{"Weeks": 9}`))
	if err != nil {
		t.Fatal(err)
	}
	want := def.Defaults.(Table1Config)
	want.Weeks = 9
	if !reflect.DeepEqual(got, want) {
		t.Errorf("partial decode drifted from defaults: got %+v, want %+v", got, want)
	}
}

// TestOptionsFromJSONErrors tables the strictness contract.
func TestOptionsFromJSONErrors(t *testing.T) {
	cases := []struct {
		name, id, raw, contains string
	}{
		{"unknown experiment", "nope", `{}`, "unknown experiment"},
		{"unknown field", "confounding", `{"Bogus": 1}`, "Bogus"},
		{"wrong type", "confounding", `{"Hours": "ten"}`, "Hours"},
		{"trailing data", "confounding", `{} {}`, "trailing data"},
		{"array not object", "confounding", `[1,2]`, "confounding options"},
		{"options on optionless", "tromboneera", `{"Hours": 5}`, "takes no options"},
		{"scenario field is unreachable", "table1", `{"Scenario": "x"}`, "Scenario"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := OptionsFromJSON(tc.id, []byte(tc.raw))
			if err == nil {
				t.Fatal("expected an error")
			}
			if !strings.Contains(err.Error(), tc.contains) {
				t.Errorf("error %q does not mention %q", err, tc.contains)
			}
		})
	}
}

// TestOptionsFromJSONEmpty: an absent or null document means "registered
// defaults" — including for experiments that take no options at all.
func TestOptionsFromJSONEmpty(t *testing.T) {
	for _, raw := range []string{"", "  ", "null"} {
		got, err := OptionsFromJSON("confounding", []byte(raw))
		if err != nil {
			t.Fatalf("%q: %v", raw, err)
		}
		if !reflect.DeepEqual(got, registry["confounding"].Defaults) {
			t.Errorf("%q: got %+v, want registered defaults", raw, got)
		}
		if got, err := OptionsFromJSON("tromboneera", []byte(raw)); err != nil || got != nil {
			t.Errorf("%q on optionless experiment: got (%v, %v), want (nil, nil)", raw, got, err)
		}
	}
}

// TestOptionsWithScenario pins the shared retargeting helper the CLI's
// -scenario flag and the server's ?scenario= parameter both ride.
func TestOptionsWithScenario(t *testing.T) {
	o, err := OptionsWithScenario(registry["table1"].Defaults, "gen/abc")
	if err != nil {
		t.Fatal(err)
	}
	if o.(Table1Config).Scenario != "gen/abc" {
		t.Errorf("table1 scenario = %q, want gen/abc", o.(Table1Config).Scenario)
	}
	o, err = OptionsWithScenario(registry["chaos"].Defaults, "trombone")
	if err != nil {
		t.Fatal(err)
	}
	if o.(ChaosOptions).Scenario != "trombone" {
		t.Errorf("chaos scenario = %q, want trombone", o.(ChaosOptions).Scenario)
	}
	if _, err := OptionsWithScenario(HorizonOptions{}, "southafrica"); err == nil ||
		!strings.Contains(err.Error(), "scenario-capable") {
		t.Errorf("non-capable options: err = %v, want the scenario-capable list", err)
	}
}
