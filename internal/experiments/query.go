package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"sisyphus/internal/artifact"
	"sisyphus/internal/causal/dag"
	"sisyphus/internal/causal/data"
	"sisyphus/internal/causal/estimate"
	"sisyphus/internal/netsim/scenario"
	"sisyphus/internal/obs"
	"sisyphus/internal/parallel"
)

// The /query endpoint answers declarative causal questions against the §3
// running-example observational substrate: per-hour columns R (alternate
// route in use), L (RTT ms), C (utilization) and hour, simulated from the
// South Africa world with a load-adaptive egress. A query names a
// treatment, an outcome, and an adjustment strategy; the engine compiles it
// through dag identification (backdoor criterion) into an estimator
// pipeline and runs it like any experiment — same pipeline seams, same
// artifact store, same determinism contract.

// QueryDefaultGraph is the planning DAG assumed when a query names none:
// the paper's running example, where congestion confounds routing and
// latency.
const QueryDefaultGraph = "C -> R; C -> L; R -> L"

// Query knob bounds. Hours is capped to a simulated year: the substrate
// costs ~7ms per simulated hour, so the cap bounds a single build at about
// a minute; the floor keeps enough observations for stratification to mean
// anything.
const (
	QueryMinHours = 100
	QueryMaxHours = 8760
	QueryMaxBins  = 50
	// QueryMaxGraphNodes caps the planning DAG's size. Identification
	// enumerates paths and candidate subsets, both exponential in the worst
	// case; planning DAGs in measurement studies name a handful of
	// variables, and the cap keeps a hostile dense graph from turning
	// compilation into a CPU sink.
	QueryMaxGraphNodes = 8
	// queryMaxBodyBytes bounds how much of a query document the decoder
	// will even look at; the HTTP layer enforces the same bound with
	// MaxBytesReader before the body is read.
	QueryMaxBodyBytes = 1 << 16
)

// Sentinel errors the serving layer maps onto status codes: an invalid
// query is the caller's malformed request (400); a non-identifiable one is
// well-formed but has no observed-backdoor answer under its DAG (422).
var (
	ErrQueryInvalid    = errors.New("experiments: invalid causal query")
	ErrNotIdentifiable = errors.New("experiments: effect not identifiable")
)

func queryInvalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrQueryInvalid, fmt.Sprintf(format, args...))
}

// CausalQuery is a normalized declarative causal question. The zero value
// is not runnable; DecodeCausalQuery and CompileCausalQuery fill defaults
// (graph, scenario, seed 42, hours 1500, bins 10).
type CausalQuery struct {
	// Graph is the planning DAG in dag.Parse syntax
	// ("C -> R; C -> L; R -> L; U [latent]").
	Graph string
	// Treatment and Outcome name graph nodes that must also be measured
	// dataset columns.
	Treatment string
	Outcome   string
	// Adjustment is the conditioning set. Nil with Auto set means the
	// engine chose it by backdoor identification.
	Adjustment []string
	// Auto records whether the adjustment set was identified rather than
	// supplied.
	Auto bool
	// Scenario names the world the substrate simulates: any registered id
	// or a gen: spec (which registers on compile). The default is the
	// South Africa world. Worlds that do not cast a multihomed eyeball
	// compile fine but refuse at run time with scenario.ErrCastingMissing
	// — not identifiable on that world, not a malformed question.
	Scenario string
	// Seed roots all simulation randomness, as everywhere else.
	Seed uint64
	// Hours is the simulated horizon; Bins the stratification granularity.
	Hours int
	Bins  int
}

// queryDoc is the JSON wire shape of a causal query. Adjustment is raw so
// both the string "auto" and an explicit array decode through one field.
type queryDoc struct {
	Graph      string          `json:"graph"`
	Treatment  string          `json:"treatment"`
	Outcome    string          `json:"outcome"`
	Adjustment json.RawMessage `json:"adjustment"`
	Scenario   string          `json:"scenario"`
	Seed       *uint64         `json:"seed"`
	Hours      int             `json:"hours"`
	Bins       int             `json:"bins"`
}

// DecodeCausalQuery parses a JSON query document strictly: unknown fields,
// trailing data, wrong types, out-of-range knobs and overflowing seeds are
// all ErrQueryInvalid, never a panic. Missing fields take defaults
// (QueryDefaultGraph, scenario "southafrica", seed 42, hours 1500,
// bins 10, adjustment "auto").
func DecodeCausalQuery(raw []byte) (CausalQuery, error) {
	var zero CausalQuery
	if len(raw) > QueryMaxBodyBytes {
		return zero, queryInvalidf("document exceeds %d bytes", QueryMaxBodyBytes)
	}
	trimmed := bytes.TrimSpace(raw)
	if len(trimmed) == 0 {
		return zero, queryInvalidf("empty document")
	}
	var doc queryDoc
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return zero, queryInvalidf("%v", err)
	}
	if dec.More() {
		return zero, queryInvalidf("trailing data after JSON document")
	}

	q := CausalQuery{
		Graph:     doc.Graph,
		Treatment: doc.Treatment,
		Outcome:   doc.Outcome,
		Scenario:  doc.Scenario,
		Seed:      42,
		Hours:     doc.Hours,
		Bins:      doc.Bins,
	}
	if doc.Seed != nil {
		q.Seed = *doc.Seed
	}

	// Adjustment: absent or JSON null or "auto" → identified; otherwise an
	// explicit array of column names.
	adj := bytes.TrimSpace(doc.Adjustment)
	switch {
	case len(adj) == 0 || string(adj) == "null":
		q.Auto = true
	case adj[0] == '"':
		var s string
		if err := json.Unmarshal(adj, &s); err != nil || s != "auto" {
			return zero, queryInvalidf(`adjustment must be "auto" or an array of column names`)
		}
		q.Auto = true
	default:
		var set []string
		if err := json.Unmarshal(adj, &set); err != nil {
			return zero, queryInvalidf(`adjustment must be "auto" or an array of column names`)
		}
		if len(set) > dag.AdjustmentSearchLimit {
			return zero, queryInvalidf("adjustment set has %d members, max %d", len(set), dag.AdjustmentSearchLimit)
		}
		q.Adjustment = set
	}
	return q, nil
}

// withDefaults fills the omitted-field defaults without touching anything
// the caller set.
func (q CausalQuery) withDefaults() CausalQuery {
	if q.Graph == "" {
		q.Graph = QueryDefaultGraph
	}
	if q.Scenario == "" {
		q.Scenario = scenario.SouthAfricaID
	}
	if q.Hours == 0 {
		q.Hours = 1500
	}
	if q.Bins == 0 {
		q.Bins = 10
	}
	return q
}

// queryColumns is the measured-column vocabulary of the observational
// substrate, sorted. "hour" is measured but continuous-cyclic; it is legal
// as an adjustment variable, not as a treatment.
func queryColumns() []string { return []string{"C", "L", "R", "hour"} }

func isQueryColumn(name string) bool {
	for _, c := range queryColumns() {
		if c == name {
			return true
		}
	}
	return false
}

// QueryPlan is a compiled causal query: the parsed graph, the identified
// (or validated) adjustment set, and the identification evidence that goes
// into the result document.
type QueryPlan struct {
	// Query is the normalized question, defaults filled and adjustment
	// resolved.
	Query CausalQuery
	// Graph is the parsed planning DAG.
	Graph *dag.Graph
	// Adjustment is the conditioning set the estimators will use (sorted,
	// possibly empty).
	Adjustment []string
	// BackdoorPaths and MinimalSets are the identification evidence.
	BackdoorPaths []string
	MinimalSets   [][]string
}

// CompileCausalQuery checks a query against its DAG and the measured
// columns and resolves the adjustment set. Malformed questions (bad graph,
// unknown variables, unmeasured columns) are ErrQueryInvalid; well-formed
// questions whose effect has no observed backdoor adjustment — a latent
// confounder, or an explicit set that leaves a path open — are
// ErrNotIdentifiable.
func CompileCausalQuery(q CausalQuery) (*QueryPlan, error) {
	q = q.withDefaults()
	if q.Treatment == "" || q.Outcome == "" {
		return nil, queryInvalidf("treatment and outcome are required")
	}
	if q.Treatment == q.Outcome {
		return nil, queryInvalidf("treatment and outcome must differ")
	}
	resolved, err := scenario.ResolveID(q.Scenario)
	if err != nil {
		return nil, queryInvalidf("scenario: %v", err)
	}
	q.Scenario = resolved
	if q.Hours < QueryMinHours || q.Hours > QueryMaxHours {
		return nil, queryInvalidf("hours %d out of range [%d, %d]", q.Hours, QueryMinHours, QueryMaxHours)
	}
	if q.Bins < 1 || q.Bins > QueryMaxBins {
		return nil, queryInvalidf("bins %d out of range [1, %d]", q.Bins, QueryMaxBins)
	}
	if len(q.Graph) > 4096 {
		return nil, queryInvalidf("graph exceeds 4096 bytes")
	}
	g, err := dag.Parse(q.Graph)
	if err != nil {
		return nil, queryInvalidf("graph: %v", err)
	}
	if n := len(g.Nodes()); n > QueryMaxGraphNodes {
		return nil, queryInvalidf("graph has %d nodes, max %d for served queries", n, QueryMaxGraphNodes)
	}
	for _, v := range []string{q.Treatment, q.Outcome} {
		if !g.Has(v) {
			return nil, queryInvalidf("%q is not a node of the graph (nodes: %s)", v, strings.Join(g.Nodes(), ", "))
		}
		if g.IsLatent(v) {
			return nil, queryInvalidf("%q is latent in the graph; treatment and outcome must be observed", v)
		}
		if !isQueryColumn(v) {
			return nil, queryInvalidf("%q is not a measured column (columns: %s)", v, strings.Join(queryColumns(), ", "))
		}
	}
	if q.Treatment == "hour" {
		return nil, queryInvalidf("hour is not a binary treatment; treat on R or C")
	}

	// An explicit set's members are validated before identification runs, so
	// a malformed set (latent/unknown/unmeasured members) is the caller's
	// mistake even when the graph would also fail identification.
	var explicit []string
	if !q.Auto {
		explicit = append([]string(nil), q.Adjustment...)
		sort.Strings(explicit)
		explicit = dedupeStrings(explicit)
		for _, v := range explicit {
			if v == q.Treatment || v == q.Outcome {
				return nil, queryInvalidf("adjustment variable %q is the treatment or outcome", v)
			}
			if !g.Has(v) {
				return nil, queryInvalidf("adjustment variable %q is not a node of the graph (nodes: %s)", v, strings.Join(g.Nodes(), ", "))
			}
			if g.IsLatent(v) {
				return nil, queryInvalidf("adjustment variable %q is latent; only observed variables can be conditioned on", v)
			}
			if !isQueryColumn(v) {
				return nil, queryInvalidf("adjustment variable %q is not a measured column (columns: %s)", v, strings.Join(queryColumns(), ", "))
			}
		}
	}

	sets, err := g.MinimalAdjustmentSets(q.Treatment, q.Outcome)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotIdentifiable, err)
	}
	plan := &QueryPlan{
		Graph:         g,
		BackdoorPaths: pathStrings(g.BackdoorPaths(q.Treatment, q.Outcome)),
		MinimalSets:   sets,
	}

	if q.Auto {
		// Identification proposes sets over graph nodes; the estimators need
		// measured columns. Take the first (smallest, lexicographically
		// earliest) minimal set that is fully measured.
		chosen := -1
		for i, set := range sets {
			measured := true
			for _, v := range set {
				if !isQueryColumn(v) {
					measured = false
					break
				}
			}
			if measured {
				chosen = i
				break
			}
		}
		if chosen < 0 {
			return nil, fmt.Errorf("%w: every minimal adjustment set %v contains an unmeasured variable (columns: %s)",
				ErrNotIdentifiable, sets, strings.Join(queryColumns(), ", "))
		}
		plan.Adjustment = append([]string(nil), sets[chosen]...)
	} else {
		if !g.SatisfiesBackdoor(q.Treatment, q.Outcome, explicit) {
			return nil, fmt.Errorf("%w: adjustment set %v does not satisfy the backdoor criterion for %s → %s (minimal valid sets: %v)",
				ErrNotIdentifiable, explicit, q.Treatment, q.Outcome, sets)
		}
		plan.Adjustment = explicit
	}
	q.Adjustment = append([]string(nil), plan.Adjustment...)
	plan.Query = q
	return plan, nil
}

func dedupeStrings(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// QueryIdentification is the identification evidence attached to a query
// result: what the DAG implied, and what the estimators conditioned on.
type QueryIdentification struct {
	Graph                 string
	BackdoorPaths         []string
	MinimalAdjustmentSets [][]string
	Adjustment            []string
	Auto                  bool
}

// QueryResult is the answer to a causal query: the normalized question,
// identification evidence, the estimator panel, and — because the substrate
// is simulated — the interventional ground truth when the question matches
// the running example's do(R) contrast (null otherwise).
type QueryResult struct {
	Query          CausalQuery
	Rows           int
	TreatedShare   float64
	Identification QueryIdentification
	Estimates      []estimate.Estimate
	TrueEffect     NullableFloat
}

// Render prints the estimator panel plus the identification block, same
// table idiom as every experiment.
func (r *QueryResult) Render() string {
	t := &table{header: []string{"estimator", fmt.Sprintf("effect of %s on %s", r.Query.Treatment, r.Query.Outcome), "SE", "p"}}
	for _, e := range r.Estimates {
		t.add(e.Method, fmt.Sprintf("%+.3f", e.Effect), fmt.Sprintf("%.3f", e.SE), fmt.Sprintf("%.3f", e.PValue()))
	}
	if !r.TrueEffect.IsNaN() {
		t.add("GROUND TRUTH do("+r.Query.Treatment+")", fmt.Sprintf("%+.3f", float64(r.TrueEffect)), "-", "-")
	}
	return fmt.Sprintf("Causal query: %s → %s (%d rows, treated %.0f%% of hours)\n\n%s\nIdentification:\n  graph: %s\n  backdoor paths: %v\n  minimal adjustment sets: %v\n  adjustment used: %v (auto=%v)\n",
		r.Query.Treatment, r.Query.Outcome, r.Rows, 100*r.TreatedShare, t.String(),
		r.Identification.Graph, r.Identification.BackdoorPaths, r.Identification.MinimalAdjustmentSets,
		r.Identification.Adjustment, r.Identification.Auto)
}

// RunCausalQuery compiles and executes a causal query: identification,
// then the standard Scenario → Dataset → Estimator → Report pipeline over
// the cached observational substrate. cfg.Seed is ignored — the seed rides
// in the query, which is the cache coordinate.
func RunCausalQuery(ctx context.Context, cfg Config, q CausalQuery) (*QueryResult, error) {
	plan, err := CompileCausalQuery(q)
	if err != nil {
		return nil, err
	}
	q = plan.Query
	ctx = obs.Scoped(ctx, "query")
	ctx = artifact.With(ctx, cfg.Artifacts)

	res := &QueryResult{Query: q}
	var frame *queryFrame
	var f *data.Frame
	err = stagedRun(ctx, "query", func(ctx context.Context) error {
		var err error
		frame, err = fetchQueryFrame(ctx, cfg.Pool, q.Scenario, q.Seed, q.Hours)
		return err
	}, func(ctx context.Context) error {
		var err error
		f, err = data.FromColumns(map[string][]float64{
			"R": frame.R, "L": frame.L, "C": frame.C, "hour": frame.Hour,
		})
		return err
	}, func(ctx context.Context) error {
		treat := f.MustColumn(q.Treatment)
		for _, v := range treat {
			if v != 0 && v != 1 {
				return queryInvalidf("treatment %q is not binary in the dataset; treat on R", q.Treatment)
			}
		}
		res.Rows = f.Len()
		var sum float64
		for _, v := range treat {
			sum += v
		}
		res.TreatedShare = sum / float64(len(treat))

		naive, err := estimate.NaiveAssociation(f, q.Treatment, q.Outcome)
		if err != nil {
			return err
		}
		res.Estimates = append(res.Estimates, naive)
		if len(plan.Adjustment) > 0 {
			strat, err := estimate.Stratified(f, q.Treatment, q.Outcome, plan.Adjustment, q.Bins)
			if err != nil {
				return err
			}
			reg, err := estimate.Regression(f, q.Treatment, q.Outcome, plan.Adjustment)
			if err != nil {
				return err
			}
			ipw, err := estimate.IPW(f, q.Treatment, q.Outcome, plan.Adjustment, 0.01)
			if err != nil {
				return err
			}
			res.Estimates = append(res.Estimates, strat, reg, ipw)
		} else {
			// Empty valid adjustment set: the naive contrast is already
			// causal under the stated DAG; a plain regression is the only
			// extra panel member that means anything.
			reg, err := estimate.Regression(f, q.Treatment, q.Outcome, nil)
			if err != nil {
				return err
			}
			res.Estimates = append(res.Estimates, reg)
		}
		return nil
	}, func(ctx context.Context) error {
		res.Identification = QueryIdentification{
			Graph:                 q.Graph,
			BackdoorPaths:         plan.BackdoorPaths,
			MinimalAdjustmentSets: plan.MinimalSets,
			Adjustment:            plan.Adjustment,
			Auto:                  q.Auto,
		}
		// The simulator's interventional ground truth exists for exactly one
		// contrast: forcing the route both ways at every sampled hour. Any
		// other question gets null, not a made-up number.
		if q.Treatment == "R" && q.Outcome == "L" && frame.TrueN > 0 {
			res.TrueEffect = NullableFloat(frame.TrueSum / float64(frame.TrueN))
		} else {
			res.TrueEffect = NullableFloat(math.NaN())
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// queryFrame is the cached observational substrate: the running example's
// per-hour columns plus the forced-route ground truth. Exported fields so
// the gob codec persists it on the disk tier.
type queryFrame struct {
	R, L, C, Hour []float64
	AltShare      float64
	TrueSum       float64
	TrueN         int
}

const (
	kindQueryFrame         = "qframe"
	queryFrameCodecVersion = "qframe-gob-v1"
)

// fetchQueryFrame returns a caller-owned observational frame for
// ⟨scenario, seed, hours⟩, through the artifact store when one rides the
// context (singleflight: concurrent identical queries share one simulation)
// and by direct build otherwise — byte-identical either way. The scenario id
// sits in the key's scenario coordinate, so the default-world key hashes
// exactly as it did when the coordinate was hard-coded.
func fetchQueryFrame(ctx context.Context, pool parallel.Pool, scenarioID string, seed uint64, hours int) (*queryFrame, error) {
	st := artifact.From(ctx)
	if st == nil {
		return buildQueryFrame(ctx, pool, scenarioID, seed, hours)
	}
	key, err := artifact.NewKey(kindQueryFrame, scenarioID, seed, struct{ Hours int }{hours})
	if err != nil {
		return nil, err
	}
	return artifact.GetOrBuild(ctx, st, key, artifact.Spec[*queryFrame]{
		Build: func(ctx context.Context) (*queryFrame, error) {
			return buildQueryFrame(ctx, pool, scenarioID, seed, hours)
		},
		Fork: (*queryFrame).fork,
		Size: (*queryFrame).sizeBytes,
		Codec: &artifact.Codec[*queryFrame]{
			Version: queryFrameCodecVersion,
			Encode:  func(q *queryFrame) ([]byte, error) { return gobEncode(q) },
			Decode: func(b []byte) (*queryFrame, error) {
				var q queryFrame
				if err := gobDecode(b, &q); err != nil {
					return nil, fmt.Errorf("qframe artifact: %w", err)
				}
				if len(q.L) != len(q.R) || len(q.C) != len(q.R) || len(q.Hour) != len(q.R) {
					return nil, fmt.Errorf("qframe artifact: ragged columns")
				}
				return &q, nil
			},
		},
	})
}

func buildQueryFrame(ctx context.Context, pool parallel.Pool, scenarioID string, seed uint64, hours int) (*queryFrame, error) {
	sim, err := confoundingScenario(ctx, pool, scenarioID, seed, hours)
	if err != nil {
		return nil, err
	}
	return &queryFrame{
		R:        sim.rCol,
		L:        sim.lCol,
		C:        sim.cCol,
		Hour:     sim.hourCol,
		AltShare: sim.altShare,
		TrueSum:  sim.trueSum,
		TrueN:    sim.trueN,
	}, nil
}

// fork deep-copies: the frame has no Freeze hook, so the stored original
// must share nothing mutable with what callers get.
func (q *queryFrame) fork() *queryFrame {
	cp := *q
	cp.R = append([]float64(nil), q.R...)
	cp.L = append([]float64(nil), q.L...)
	cp.C = append([]float64(nil), q.C...)
	cp.Hour = append([]float64(nil), q.Hour...)
	return &cp
}

func (q *queryFrame) sizeBytes() int64 {
	return int64(8*(len(q.R)+len(q.L)+len(q.C)+len(q.Hour))) + 64
}
