package experiments

import (
	"testing"

	"sisyphus/internal/artifact"
	"sisyphus/internal/causal/synthetic"
	"sisyphus/internal/netsim/scenario"
)

// TestArtifactKeyStability pins the canned worlds' artifact key ids as
// literals. These ids are the cache's on-disk and cross-run identity: a
// drift here silently invalidates every persisted artifact (and the
// world-sharing the sweep driver depends on), so renames and registry
// refactors must leave them byte-identical. If this test fails, the fix is
// almost never to re-pin — it is to restore the identity.
func TestArtifactKeyStability(t *testing.T) {
	cases := []struct {
		kind, scenarioID string
		seed             uint64
		cfg              any
		want             string
	}{
		{kindWorld, scenario.SouthAfricaID, 0, nil, "world/southafrica/seed0/-"},
		{kindRIB, scenario.SouthAfricaID, 0, nil, "rib/southafrica/seed0/-"},
		{kindWorld, scenario.TromboneEraID, 0, nil, "world/tromboneera/seed0/-"},
		{kindRIB, scenario.TromboneEraID, 0, nil, "rib/tromboneera/seed0/-"},
		{
			// The default table1 campaign at the golden seed: the exact key
			// every suite run has been sharing since the artifact layer
			// landed. The config hash covers campaignParams' canonical JSON —
			// field renames, reorderings, or type changes all surface here.
			kindCampaign, scenario.SouthAfricaID, 42,
			campaignParamsFrom(Table1Config{Method: synthetic.Robust, WithTruth: true}.withDefaults(), true),
			"campaign/southafrica/seed42/1de9d237ef4467d3fa4af38412a1704a1bb66e8fa89c83b3fbed81f03460a8b7",
		},
		{
			// The default /query observational frame (scenario southafrica,
			// hours 1500) at the golden seed. The scenario id rides in the
			// key's Scenario coordinate — the same position the hard-coded
			// SouthAfricaID occupied before the registry refactor — so the
			// default-path hash must not move.
			kindQueryFrame, scenario.SouthAfricaID, 42,
			struct{ Hours int }{1500},
			"qframe/southafrica/seed42/8738548ab6dc4e4a8992e272b774027e2ced4575bac6e0213e725f2202b10070",
		},
	}
	for _, c := range cases {
		k, err := artifact.NewKey(c.kind, c.scenarioID, c.seed, c.cfg)
		if err != nil {
			t.Fatal(err)
		}
		if k.ID() != c.want {
			t.Errorf("key %s/%s: id drifted\n got %s\nwant %s", c.kind, c.scenarioID, k.ID(), c.want)
		}
	}
}

// TestScenarioFieldExcludedFromCampaignKey: Table1Config.Scenario is
// analysis routing, not campaign identity — the id already sits in the
// key's Scenario coordinate. Hashing it too would split the cache by a
// redundant coordinate and break key stability across the registry
// refactor.
func TestScenarioFieldExcludedFromCampaignKey(t *testing.T) {
	a := campaignParamsFrom(Table1Config{ScenarioChoice: ScenarioChoice{Scenario: scenario.SouthAfricaID}}.withDefaults(), true)
	b := campaignParamsFrom(Table1Config{ScenarioChoice: ScenarioChoice{Scenario: scenario.TromboneEraID}}.withDefaults(), true)
	ka, err := artifact.NewKey(kindCampaign, "x", 1, a)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := artifact.NewKey(kindCampaign, "x", 1, b)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatalf("campaign params hash depends on the scenario field: %s vs %s", ka.ID(), kb.ID())
	}
}
