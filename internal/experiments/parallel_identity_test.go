package experiments

import (
	"context"
	"reflect"
	"testing"

	"sisyphus/internal/causal/synthetic"
	"sisyphus/internal/parallel"
)

// TestTable1ParallelBitIdentity is the PR's headline equivalence check: a
// full E1 run — simulation, IXP detection, per-unit synthetic control with
// concurrent placebo fits, concurrent BGP propagation underneath — must
// render byte-identical tables whether the pool has 1 worker or 8.
func TestTable1ParallelBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full E1 run")
	}
	ctx := context.Background()
	cfg := experimentsTable1Config()

	seq, seqErr := RunTable1(ctx, parallel.NewPool(1), cfg)
	par, parErr := RunTable1(ctx, parallel.NewPool(8), cfg)

	if seqErr != nil || parErr != nil {
		t.Fatalf("run errors: %v / %v", seqErr, parErr)
	}
	if seqR, parR := seq.Render(), par.Render(); seqR != parR {
		t.Fatalf("rendered Table 1 differs between 1 and 8 workers:\n--- sequential ---\n%s\n--- parallel ---\n%s", seqR, parR)
	}
	if !reflect.DeepEqual(seq.Rows, par.Rows) {
		t.Fatal("Table 1 rows differ between 1 and 8 workers")
	}
}

func experimentsTable1Config() Table1Config {
	return Table1Config{
		Weeks: 2, JoinWeek: 1, Seed: 11, Method: synthetic.Robust,
	}
}

// TestRunAllMatchesSequential: the concurrent suite runner must produce the
// same renderings, in the same ID order, as running each experiment in a
// plain loop. Restricted to the cheap experiments to keep CI time sane —
// the experiments are independent by construction, so coverage of the
// orchestration is what matters here, not every workload.
func TestRunAllMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several experiments twice")
	}
	ctx := context.Background()
	cheap := map[string]bool{"collider": true, "confounding": true, "cellular": true, "mlab": true}
	cfg := Config{Seed: 5, Pool: parallel.NewPool(8)}

	outcomes, err := RunAll(ctx, cfg)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}

	if len(outcomes) != len(All()) {
		t.Fatalf("RunAll returned %d outcomes for %d experiments", len(outcomes), len(All()))
	}
	for i, e := range All() {
		oc := outcomes[i]
		if oc.Exp.ID != e.ID {
			t.Fatalf("outcome %d is %q, want ID order (%q)", i, oc.Exp.ID, e.ID)
		}
		if oc.Err != nil {
			t.Fatalf("%s failed under the pool: %v", oc.Exp.ID, oc.Err)
		}
		if !cheap[e.ID] {
			continue
		}
		res, err := e.Run(ctx, Config{Seed: cfg.Seed})
		if err != nil {
			t.Fatalf("%s failed sequentially: %v", e.ID, err)
		}
		if res.Render() != oc.Res.Render() {
			t.Fatalf("%s renders differently under the pool", e.ID)
		}
	}
}

// TestConcurrentSuitesDoNotInterfere is the pool-as-value guarantee: two
// suites running at once in one process, each with a different pool width,
// must each produce exactly what they produce alone. Before this PR the
// width lived in a package-global, so one suite's override leaked into the
// other; now the pool travels by value in Config and nothing global is
// mutated.
func TestConcurrentSuitesDoNotInterfere(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the cheap experiments four times")
	}
	ctx := context.Background()
	only := []string{"cellular", "collider", "confounding", "mlab"}

	render := func(outs []RunOutcome, t *testing.T) []string {
		var got []string
		for _, oc := range outs {
			if oc.Err != nil {
				t.Errorf("%s: %v", oc.Exp.ID, oc.Err)
				continue
			}
			got = append(got, oc.Res.Render())
		}
		return got
	}

	// Baselines, sequentially, at each width.
	base1, err := RunAll(ctx, Config{Seed: 7, Pool: parallel.NewPool(1), Only: only})
	if err != nil {
		t.Fatal(err)
	}
	base8, err := RunAll(ctx, Config{Seed: 7, Pool: parallel.NewPool(8), Only: only})
	if err != nil {
		t.Fatal(err)
	}

	// The same two suites, concurrently.
	var conc1, conc8 []RunOutcome
	var err1, err8 error
	done := make(chan struct{})
	go func() {
		defer close(done)
		conc1, err1 = RunAll(ctx, Config{Seed: 7, Pool: parallel.NewPool(1), Only: only})
	}()
	conc8, err8 = RunAll(ctx, Config{Seed: 7, Pool: parallel.NewPool(8), Only: only})
	<-done
	if err1 != nil || err8 != nil {
		t.Fatalf("concurrent suites errored: %v / %v", err1, err8)
	}

	if !reflect.DeepEqual(render(base1, t), render(conc1, t)) {
		t.Fatal("width-1 suite changed results when a width-8 suite ran alongside it")
	}
	if !reflect.DeepEqual(render(base8, t), render(conc8, t)) {
		t.Fatal("width-8 suite changed results when a width-1 suite ran alongside it")
	}
}
