package experiments

import (
	"reflect"
	"testing"

	"sisyphus/internal/causal/synthetic"
	"sisyphus/internal/parallel"
)

// TestTable1ParallelBitIdentity is the PR's headline equivalence check: a
// full E1 run — simulation, IXP detection, per-unit synthetic control with
// concurrent placebo fits, concurrent BGP propagation underneath — must
// render byte-identical tables whether the pool has 1 worker or 8.
func TestTable1ParallelBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full E1 run")
	}
	cfg := experimentsTable1Config()

	restore := parallel.SetWorkers(1)
	seq, seqErr := RunTable1(cfg)
	restore()

	restore = parallel.SetWorkers(8)
	par, parErr := RunTable1(cfg)
	restore()

	if seqErr != nil || parErr != nil {
		t.Fatalf("run errors: %v / %v", seqErr, parErr)
	}
	if seqR, parR := seq.Render(), par.Render(); seqR != parR {
		t.Fatalf("rendered Table 1 differs between 1 and 8 workers:\n--- sequential ---\n%s\n--- parallel ---\n%s", seqR, parR)
	}
	if !reflect.DeepEqual(seq.Rows, par.Rows) {
		t.Fatal("Table 1 rows differ between 1 and 8 workers")
	}
}

func experimentsTable1Config() Table1Config {
	return Table1Config{
		Weeks: 2, JoinWeek: 1, Seed: 11, Method: synthetic.Robust,
	}
}

// TestRunAllMatchesSequential: the concurrent suite runner must produce the
// same renderings, in the same ID order, as running each experiment in a
// plain loop. Restricted to the cheap experiments to keep CI time sane —
// the experiments are independent by construction, so coverage of the
// orchestration is what matters here, not every workload.
func TestRunAllMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several experiments twice")
	}
	cheap := map[string]bool{"collider": true, "confounding": true, "cellular": true, "mlab": true}
	const seed = 5

	restore := parallel.SetWorkers(8)
	outcomes := RunAll(seed)
	restore()

	if len(outcomes) != len(All()) {
		t.Fatalf("RunAll returned %d outcomes for %d experiments", len(outcomes), len(All()))
	}
	for i, e := range All() {
		oc := outcomes[i]
		if oc.Exp.ID != e.ID {
			t.Fatalf("outcome %d is %q, want ID order (%q)", i, oc.Exp.ID, e.ID)
		}
		if oc.Err != nil {
			t.Fatalf("%s failed under the pool: %v", oc.Exp.ID, oc.Err)
		}
		if !cheap[e.ID] {
			continue
		}
		res, err := e.Run(seed)
		if err != nil {
			t.Fatalf("%s failed sequentially: %v", e.ID, err)
		}
		if res.Render() != oc.Res.Render() {
			t.Fatalf("%s renders differently under the pool", e.ID)
		}
	}
}
