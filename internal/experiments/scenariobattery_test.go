package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"sisyphus/internal/netsim/scenario"
	"sisyphus/internal/parallel"
)

// TestScenarioCapableSet pins which experiments take a scenario: the whole
// §3+ battery plus the Table 1 family. Growing the list is expected when an
// experiment gains the capability; shrinking it means a runner silently
// lost worlds it used to support.
func TestScenarioCapableSet(t *testing.T) {
	want := []string{
		"chaos", "confounding", "counterfactual", "did", "exposure",
		"familyknob", "instrument", "mlab", "rootcause", "table1",
	}
	got := ScenarioCapableIDs()
	if len(got) != len(want) {
		t.Fatalf("ScenarioCapableIDs() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ScenarioCapableIDs() = %v, want %v", got, want)
		}
	}
}

// batteryWorld registers the battery's small synthetic internet: big enough
// to cast every experiment (multihomed access tier, two content ASes),
// small enough that the full runner battery stays cheap.
func batteryWorld(t *testing.T) string {
	t.Helper()
	sp := scenario.DefaultGenSpec()
	sp.Config.Tier2 = 4
	sp.Config.Access = 6
	sp.Config.Content = 2
	sp.Config.Treated = 2
	sp.Config.MultihomeProb = 1 // every access AS dual-homed ⇒ eyeball cast exists
	sp.Seed = 7
	id, err := scenario.RegisterGen(sp)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// TestScenarioBatteryOnGeneratedWorld runs every newly scenario-capable
// runner on a generated world at pool widths 1 and 4 and requires the
// rendered text and JSON documents to be byte-identical — the same
// any-width determinism contract the canned worlds have always had, now on
// a world that exists only as a gen spec.
func TestScenarioBatteryOnGeneratedWorld(t *testing.T) {
	genID := batteryWorld(t)
	sc := ScenarioChoice{Scenario: genID}
	cases := []struct {
		id   string
		opts Options
	}{
		{"confounding", WorldOptions{ScenarioChoice: sc, Hours: 400}},
		{"counterfactual", WorldOptions{ScenarioChoice: sc, Hours: 400}},
		{"familyknob", WorldOptions{ScenarioChoice: sc, Hours: 400}},
		{"instrument", WorldOptions{ScenarioChoice: sc, Hours: 500}},
		{"mlab", WorldOptions{ScenarioChoice: sc, Hours: 400}},
		{"exposure", ExposureOptions{ScenarioChoice: sc}},
		{"rootcause", RootCauseOptions{ScenarioChoice: sc}},
		{"did", DiDOptions{ScenarioChoice: sc}},
	}
	for _, c := range cases {
		t.Run(c.id, func(t *testing.T) {
			t.Parallel()
			e, err := Get(c.id)
			if err != nil {
				t.Fatal(err)
			}
			run := func(width int) (string, []byte) {
				res, err := e.Run(context.Background(), Config{
					Seed: 9, Pool: parallel.NewPool(width), Opts: c.opts,
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", width, err)
				}
				doc, err := json.Marshal(res)
				if err != nil {
					t.Fatalf("workers=%d: %v", width, err)
				}
				return res.Render(), doc
			}
			text1, doc1 := run(1)
			text4, doc4 := run(4)
			if text1 != text4 {
				t.Errorf("rendered text differs between workers 1 and 4:\n--- w1 ---\n%s\n--- w4 ---\n%s", text1, text4)
			}
			if string(doc1) != string(doc4) {
				t.Errorf("JSON differs between workers 1 and 4:\n--- w1 ---\n%s\n--- w4 ---\n%s", doc1, doc4)
			}
			if text1 == "" {
				t.Error("empty render")
			}
		})
	}
}

// TestScenarioRefusalOnCastingDeficientWorld: a generated world with no
// multihomed access AS has no eyeball cast, so every eyeball-dependent
// runner must refuse with the typed scenario.ErrCastingMissing — an
// actionable error, never a panic or a silently wrong answer.
func TestScenarioRefusalOnCastingDeficientWorld(t *testing.T) {
	sp := scenario.DefaultGenSpec()
	sp.Config.Tier2 = 4
	sp.Config.Access = 6
	sp.Config.Content = 2
	sp.Config.Treated = 2
	sp.Config.MultihomeProb = 0 // single-homed access tier ⇒ no eyeball cast
	sp.Seed = 7
	id, err := scenario.RegisterGen(sp)
	if err != nil {
		t.Fatal(err)
	}
	for _, expID := range []string{"confounding", "counterfactual", "familyknob", "instrument"} {
		t.Run(expID, func(t *testing.T) {
			e, err := Get(expID)
			if err != nil {
				t.Fatal(err)
			}
			opts, err := e.OptionsForScenario(id)
			if err != nil {
				t.Fatal(err)
			}
			_, err = e.Run(context.Background(), Config{Seed: 3, Pool: parallel.Pool{}, Opts: opts})
			if !errors.Is(err, scenario.ErrCastingMissing) {
				t.Fatalf("err = %v, want scenario.ErrCastingMissing", err)
			}
		})
	}
}
