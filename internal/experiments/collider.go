package experiments

import (
	"context"
	"fmt"

	"sisyphus/internal/causal/dag"
	"sisyphus/internal/mathx"
	"sisyphus/internal/netsim/engine"
	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/netsim/traffic"
	"sisyphus/internal/parallel"
	"sisyphus/internal/platform"
	"sisyphus/internal/probe"
)

// ColliderResult reproduces the §3 collider box: route changes and poor
// performance each independently prompt users to run speed tests. Analyzing
// only the tests that ran conditions on the collider "test ran" and
// fabricates an association between route changes and degradation that does
// not exist in the full population.
type ColliderResult struct {
	Hours int
	// PopulationCorr is corr(routeChanged, degradation) over ALL hours —
	// the estimand an unbiased observer would report.
	PopulationCorr float64
	// SelectedCorr is the same correlation among hours where at least one
	// user-initiated test ran — what a speed-test-only dataset shows.
	SelectedCorr float64
	// PopulationDegradedShare / SelectedDegradedShare: P(degraded) overall
	// vs among route-change hours in each dataset.
	PopChangeDegraded, PopNoChangeDegraded float64
	SelChangeDegraded, SelNoChangeDegraded float64
	Warnings                               []dag.Collider
}

// Render prints the contrast.
func (r *ColliderResult) Render() string {
	t := &table{header: []string{"dataset", "corr(route change, degradation)", "P(degraded | change)", "P(degraded | no change)"}}
	t.add("all hours (ground truth)",
		fmt.Sprintf("%+.3f", r.PopulationCorr),
		fmt.Sprintf("%.3f", r.PopChangeDegraded),
		fmt.Sprintf("%.3f", r.PopNoChangeDegraded))
	t.add("hours with a user test (selected)",
		fmt.Sprintf("%+.3f", r.SelectedCorr),
		fmt.Sprintf("%.3f", r.SelChangeDegraded),
		fmt.Sprintf("%.3f", r.SelNoChangeDegraded))
	warn := ""
	for _, c := range r.Warnings {
		warn += fmt.Sprintf("  conditioning on %q opens %s — %s\n", c.Mid, c.Left, c.Right)
	}
	return fmt.Sprintf("Speed-test collider box (§3): conditioning on \"test ran\" fabricates association\n(%d hours; route changes here are exogenous flips with no latency effect)\n\n%s\nDAG warnings for conditioning on {T}:\n%s",
		r.Hours, t.String(), warn)
}

// RunCollider builds a world where route changes have (essentially) no
// effect on RTT: the access network is multihomed to two transits whose
// paths to the content are symmetric, and an operator flips preference at
// exogenous random times. Congestion noise degrades RTT independently.
// Both events raise the probability that users run speed tests.
func RunCollider(ctx context.Context, pool parallel.Pool, seed uint64, hours int) (*ColliderResult, error) {
	if hours <= 0 {
		hours = 2000
	}
	res := &ColliderResult{Hours: hours}
	var change, degraded, tested []float64
	var selChange, selDegraded []float64
	err := stagedRun(ctx, "collider", func(ctx context.Context) error {
		return colliderScenario(ctx, pool, seed, hours, &change, &degraded, &tested)
	}, func(ctx context.Context) error {
		// Dataset: the selected subsample — hours where a test ran.
		for i := range tested {
			if tested[i] == 1 {
				selChange = append(selChange, change[i])
				selDegraded = append(selDegraded, degraded[i])
			}
		}
		return nil
	}, func(ctx context.Context) error {
		res.PopulationCorr = mathx.Correlation(change, degraded)
		res.PopChangeDegraded = condMean(degraded, change, 1)
		res.PopNoChangeDegraded = condMean(degraded, change, 0)
		res.SelectedCorr = mathx.Correlation(selChange, selDegraded)
		res.SelChangeDegraded = condMean(selDegraded, selChange, 1)
		res.SelNoChangeDegraded = condMean(selDegraded, selChange, 0)
		return nil
	}, func(ctx context.Context) error {
		// The DAG-side warning §4 wants platforms to surface.
		g := dag.MustParse("R -> T; D -> T")
		res.Warnings = g.SelectionBiasWarnings([]string{"T"})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// colliderScenario builds the symmetric two-transit world and simulates it,
// collecting the per-hour (route changed, degraded, tested) indicators.
func colliderScenario(ctx context.Context, pool parallel.Pool, seed uint64, hours int, change, degraded, tested *[]float64) error {
	// Symmetric world: two equal transits, both in Johannesburg, equal
	// base utilization, so switching between them is performance-neutral.
	b := topo.NewBuilder(nil).
		AddAS(100, "T-A", topo.Transit, "Johannesburg").
		AddAS(101, "T-B", topo.Transit, "Johannesburg").
		AddAS(7000, "Eyeball", topo.Access, "Johannesburg").
		AddAS(4001, "Content", topo.Content, "Johannesburg").
		Connect(7000, "Johannesburg", topo.CustomerOf, 100, "Johannesburg", topo.WithBaseUtil(0.4)).
		Connect(7000, "Johannesburg", topo.CustomerOf, 101, "Johannesburg", topo.WithBaseUtil(0.4)).
		Connect(4001, "Johannesburg", topo.CustomerOf, 100, "Johannesburg", topo.WithBaseUtil(0.4)).
		Connect(4001, "Johannesburg", topo.CustomerOf, 101, "Johannesburg", topo.WithBaseUtil(0.4))
	tp, err := b.Build()
	if err != nil {
		return err
	}
	e := engine.New(tp, seed, engine.Config{Pool: pool}).Bind(ctx)
	pr := probe.NewProber(e, seed+1)
	src, err := tp.FindPoP(7000, "Johannesburg")
	if err != nil {
		return err
	}

	// Exogenous route flips: an operator alternates preferred transit at
	// random times, independent of network state.
	flipRNG := mathx.NewRNG(seed + 2)
	cur := topo.ASN(100)
	for h := 10.0; h < float64(hours); h += 20 + 60*flipRNG.Float64() {
		next := topo.ASN(100)
		if cur == 100 {
			next = 101
		}
		e.Schedule(engine.EvSetLocalPref(h, 7000, next, 250))
		e.Schedule(engine.EvSetLocalPref(h, 7000, cur, 100))
		cur = next
	}
	// Congestion bursts on the access links (both, keeping symmetry) to
	// create genuine degradation episodes unrelated to the flips.
	rel, err := tp.Relationships()
	if err != nil {
		return err
	}
	burstRNG := mathx.NewRNG(seed + 3)
	for h := 15.0; h < float64(hours); h += 30 + 80*burstRNG.Float64() {
		dur := 4 + 10*burstRNG.Float64()
		mag := 0.3 + 0.25*burstRNG.Float64()
		for _, n := range []topo.ASN{100, 101} {
			for _, id := range rel.Links[7000][n] {
				e.Traffic.AddFlashCrowd(traffic.FlashCrowd{Link: id, StartHour: h, Hours: dur, Magnitude: mag})
			}
		}
	}

	um := platform.NewUserModel([]platform.UserPop{{Src: src, Dst: 4001, Size: 1}}, seed+4)
	um.BaseRate = 0.08
	um.PerfBoost = 8
	um.ChangeBoost = 10

	for e.Hour() < float64(hours) {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := e.Step(); err != nil {
			return err
		}
		obs, _, err := um.Step(pr)
		if err != nil {
			return err
		}
		o := obs[0]
		c, d, tt := 0.0, 0.0, 0.0
		if o.RouteChanged {
			c = 1
		}
		if o.Degradation > 0.15 {
			d = 1
		}
		if o.TestsRun > 0 {
			tt = 1
		}
		*change = append(*change, c)
		*degraded = append(*degraded, d)
		*tested = append(*tested, tt)
	}
	return nil
}

func condMean(y, cond []float64, v float64) float64 {
	var s, n float64
	for i := range y {
		if cond[i] == v {
			s += y[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / n
}

func init() {
	defaults := HorizonOptions{Hours: 2000}
	register(Experiment{
		ID:       "collider",
		Paper:    "§3 collider box: speed-test selection bias",
		Defaults: defaults,
		Run: func(ctx context.Context, cfg Config) (Renderable, error) {
			o, err := optionsOr(cfg, defaults)
			if err != nil {
				return nil, err
			}
			return RunCollider(ctx, cfg.Pool, cfg.Seed, o.Hours)
		},
	})
}
