package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
)

// OptionsFromJSON decodes per-experiment options from a JSON document into
// the experiment's registered typed options, starting from its defaults:
// fields the document omits keep their default values, so a caller can turn
// one knob without restating the rest. It is the single typed decode path
// shared by every non-Go front end — the HTTP serving layer's ?opts=
// parameter today, config files tomorrow — so per-experiment parsing can
// never fork per consumer.
//
// The decode is strict: unknown fields, trailing garbage, and type
// mismatches are errors, and an experiment registered without options
// rejects any document but JSON null. Fields tagged `json:"-"`
// (Table1Config.Scenario, which is addressed by the scenario coordinate,
// not the options document) cannot be set this way by construction.
func OptionsFromJSON(id string, raw []byte) (Options, error) {
	e, err := Get(id)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimSpace(raw)
	if e.Defaults == nil {
		if len(trimmed) == 0 || string(trimmed) == "null" {
			return nil, nil
		}
		return nil, fmt.Errorf("experiments: %s takes no options, got %q", id, truncateForErr(trimmed))
	}
	if len(trimmed) == 0 || string(trimmed) == "null" {
		return e.Defaults, nil
	}
	// Decode into a fresh value of the registered options' dynamic type,
	// pre-filled with the defaults. reflect.New gives the pointer the JSON
	// decoder needs; the registered type always implements Options by value,
	// so the dereferenced result converts back without a second check.
	pv := reflect.New(reflect.TypeOf(e.Defaults))
	pv.Elem().Set(reflect.ValueOf(e.Defaults))
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	dec.DisallowUnknownFields()
	if err := dec.Decode(pv.Interface()); err != nil {
		return nil, fmt.Errorf("experiments: %s options: %w", id, err)
	}
	// One JSON value and nothing after it: "{}{}", "{} 1" are malformed
	// documents, not options followed by an ignorable tail.
	if dec.More() {
		return nil, fmt.Errorf("experiments: %s options: trailing data after JSON document", id)
	}
	return pv.Elem().Interface().(Options), nil
}

// truncateForErr keeps hostile or enormous documents from flooding error
// text.
func truncateForErr(b []byte) string {
	const max = 80
	if len(b) > max {
		return string(b[:max]) + "…"
	}
	return string(b)
}

// OptionsWithScenario retargets typed options at the named world, for the
// experiments whose options implement the ScenarioOptions capability.
// Non-scenario-capable options refuse with the capable list — the same
// typed refusal OptionsForScenario gives for defaults, shared here so the
// CLI's -scenario flag and the serving layer's ?scenario= parameter cannot
// drift.
func OptionsWithScenario(o Options, id string) (Options, error) {
	so, ok := o.(ScenarioOptions)
	if !ok {
		return nil, fmt.Errorf("experiments: %T does not take a scenario (scenario-capable: %s)",
			o, strings.Join(ScenarioCapableIDs(), ", "))
	}
	return so.WithScenario(id), nil
}
