package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"sisyphus/internal/artifact"
	"sisyphus/internal/parallel"
)

// TestDecodeCausalQuery tables the wire decode: defaults, the adjustment
// forms, and every strictness rejection.
func TestDecodeCausalQuery(t *testing.T) {
	t.Run("defaults", func(t *testing.T) {
		q, err := DecodeCausalQuery([]byte(`{"treatment":"R","outcome":"L"}`))
		if err != nil {
			t.Fatal(err)
		}
		if !q.Auto || q.Adjustment != nil {
			t.Errorf("omitted adjustment: Auto=%v Adjustment=%v, want auto", q.Auto, q.Adjustment)
		}
		if q.Seed != 42 {
			t.Errorf("Seed = %d, want default 42", q.Seed)
		}
	})
	t.Run("explicit fields", func(t *testing.T) {
		q, err := DecodeCausalQuery([]byte(`{"treatment":"R","outcome":"L","adjustment":["C","hour"],"seed":0,"hours":500,"bins":5,"graph":"C -> R; R -> L; C -> L","scenario":"southafrica"}`))
		if err != nil {
			t.Fatal(err)
		}
		if q.Auto || !reflect.DeepEqual(q.Adjustment, []string{"C", "hour"}) {
			t.Errorf("Adjustment = %v (auto=%v)", q.Adjustment, q.Auto)
		}
		if q.Seed != 0 || q.Hours != 500 || q.Bins != 5 {
			t.Errorf("knobs drifted: %+v", q)
		}
	})
	t.Run("auto string", func(t *testing.T) {
		q, err := DecodeCausalQuery([]byte(`{"treatment":"R","outcome":"L","adjustment":"auto"}`))
		if err != nil || !q.Auto {
			t.Fatalf("adjustment \"auto\": q=%+v err=%v", q, err)
		}
	})
	rejects := []struct{ name, body string }{
		{"empty", ""},
		{"not json", "noise"},
		{"unknown field", `{"treatment":"R","outcome":"L","extra":1}`},
		{"trailing document", `{"treatment":"R","outcome":"L"}{}`},
		{"negative seed", `{"treatment":"R","outcome":"L","seed":-3}`},
		{"overflow seed", `{"treatment":"R","outcome":"L","seed":18446744073709551616}`},
		{"float seed", `{"treatment":"R","outcome":"L","seed":1.5}`},
		{"bad adjustment scalar", `{"treatment":"R","outcome":"L","adjustment":3}`},
		{"bad adjustment string", `{"treatment":"R","outcome":"L","adjustment":"none"}`},
		{"oversize", `{"graph":"` + strings.Repeat("x", QueryMaxBodyBytes) + `"}`},
	}
	for _, tc := range rejects {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeCausalQuery([]byte(tc.body)); !errors.Is(err, ErrQueryInvalid) {
				t.Errorf("err = %v, want ErrQueryInvalid", err)
			}
		})
	}
}

// TestCompileCausalQuery pins identification behavior: the default graph
// identifies through C, explicit sets are checked against the backdoor
// criterion, and the two failure classes stay distinct (invalid vs not
// identifiable).
func TestCompileCausalQuery(t *testing.T) {
	t.Run("auto identifies C", func(t *testing.T) {
		plan, err := CompileCausalQuery(CausalQuery{Treatment: "R", Outcome: "L", Auto: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plan.Adjustment, []string{"C"}) {
			t.Errorf("Adjustment = %v, want [C]", plan.Adjustment)
		}
		if len(plan.BackdoorPaths) == 0 {
			t.Error("no backdoor paths recorded for the confounded graph")
		}
		if plan.Query.Graph != QueryDefaultGraph || plan.Query.Hours != 1500 || plan.Query.Bins != 10 {
			t.Errorf("defaults not normalized into the plan: %+v", plan.Query)
		}
	})
	t.Run("explicit valid set", func(t *testing.T) {
		plan, err := CompileCausalQuery(CausalQuery{Treatment: "R", Outcome: "L", Adjustment: []string{"C", "C"}})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plan.Adjustment, []string{"C"}) {
			t.Errorf("Adjustment = %v, want deduped [C]", plan.Adjustment)
		}
	})
	t.Run("empty set leaves backdoor open", func(t *testing.T) {
		_, err := CompileCausalQuery(CausalQuery{Treatment: "R", Outcome: "L", Adjustment: []string{}})
		if !errors.Is(err, ErrNotIdentifiable) {
			t.Errorf("err = %v, want ErrNotIdentifiable", err)
		}
	})
	t.Run("latent confounder not identifiable", func(t *testing.T) {
		_, err := CompileCausalQuery(CausalQuery{
			Graph: "U [latent]; U -> R; U -> L; R -> L", Treatment: "R", Outcome: "L", Auto: true,
		})
		if !errors.Is(err, ErrNotIdentifiable) {
			t.Errorf("err = %v, want ErrNotIdentifiable", err)
		}
	})
	t.Run("no confounding needs empty set", func(t *testing.T) {
		plan, err := CompileCausalQuery(CausalQuery{Graph: "R -> L; R -> C", Treatment: "R", Outcome: "L", Auto: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Adjustment) != 0 {
			t.Errorf("Adjustment = %v, want empty", plan.Adjustment)
		}
	})
	invalids := []CausalQuery{
		{Treatment: "", Outcome: "L", Auto: true},
		{Treatment: "R", Outcome: "R", Auto: true},
		{Treatment: "Z", Outcome: "L", Auto: true},
		{Treatment: "hour", Outcome: "L", Auto: true},
		{Treatment: "R", Outcome: "L", Auto: true, Scenario: "atlantis"},
		{Treatment: "R", Outcome: "L", Auto: true, Hours: 1},
		{Treatment: "R", Outcome: "L", Auto: true, Bins: -2},
		{Treatment: "R", Outcome: "L", Auto: true, Graph: "R -> L; L -> R"},
		{Treatment: "R", Outcome: "L", Adjustment: []string{"L"}},
		{Treatment: "R", Outcome: "L", Adjustment: []string{"Q"}},
		{Treatment: "R", Outcome: "L", Auto: true,
			Graph: "A -> B; B -> C2; C2 -> D; D -> E; E -> F; F -> G; G -> H; H -> R; R -> L"},
	}
	for _, q := range invalids {
		if _, err := CompileCausalQuery(q); !errors.Is(err, ErrQueryInvalid) {
			t.Errorf("query %+v: err = %v, want ErrQueryInvalid", q, err)
		}
	}
}

// TestRunCausalQueryDeterministicAcrossCache runs one small query with and
// without an artifact store and requires byte-identical JSON documents —
// the same cache-identity contract every experiment is held to — and
// sanity-checks the answer: with C adjusted, the estimate should land
// nearer the simulator's ground truth than the naive contrast.
func TestRunCausalQueryDeterministicAcrossCache(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	q := CausalQuery{Treatment: "R", Outcome: "L", Auto: true, Hours: 200, Seed: 5}
	run := func(store *artifact.Store) *QueryResult {
		t.Helper()
		res, err := RunCausalQuery(context.Background(), Config{Pool: parallel.Pool{}, Artifacts: store}, q)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cached := run(artifact.NewStore())
	uncached := run(nil)
	enc := func(r *QueryResult) []byte {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(enc(cached), enc(uncached)) {
		t.Error("cached and uncached query runs produced different documents")
	}

	if cached.Rows != 200 {
		t.Errorf("Rows = %d, want 200", cached.Rows)
	}
	if cached.TrueEffect.IsNaN() {
		t.Fatal("TrueEffect missing for the do(R) contrast")
	}
	truth := float64(cached.TrueEffect)
	naive, adjusted := cached.Estimates[0].Effect, cached.Estimates[2].Effect
	if abs(adjusted-truth) > abs(naive-truth) {
		t.Logf("note: adjusted estimate %.3f farther from truth %.3f than naive %.3f at this short horizon",
			adjusted, truth, naive)
	}
	if cached.Render() == "" {
		t.Error("Render returned empty text")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestRunCausalQueryEmptyAdjustment runs a no-confounding graph end to end:
// the panel shrinks to naive + regression, and no ground truth is invented
// for a contrast the simulator cannot force (C as treatment).
func TestRunCausalQueryEmptyAdjustment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	res, err := RunCausalQuery(context.Background(), Config{Pool: parallel.Pool{}},
		CausalQuery{Graph: "R -> L; R -> C", Treatment: "R", Outcome: "L", Auto: true, Hours: 150, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimates) != 2 {
		t.Errorf("panel has %d members, want 2 (naive, regression)", len(res.Estimates))
	}
	if res.TrueEffect.IsNaN() {
		t.Error("R → L keeps its ground truth even under a different stated DAG")
	}
}

// TestRunCausalQueryNonBinaryTreatment: C is a measured column and a legal
// graph node, but it is continuous — the estimator stage must refuse it as
// a treatment with a typed error, not fabricate a contrast.
func TestRunCausalQueryNonBinaryTreatment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	_, err := RunCausalQuery(context.Background(), Config{Pool: parallel.Pool{}},
		CausalQuery{Graph: "C -> L; C -> R", Treatment: "C", Outcome: "L", Auto: true, Hours: 150, Seed: 2})
	if !errors.Is(err, ErrQueryInvalid) {
		t.Errorf("err = %v, want ErrQueryInvalid (non-binary treatment)", err)
	}
}
