package experiments

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"sisyphus/internal/netsim/bgp"
	"sisyphus/internal/netsim/scenario"
	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/parallel"
	"sisyphus/internal/platform"
	"sisyphus/internal/probe"
)

// Per-kind payload codec versions. Each folds into the disk file's
// fingerprint, so bumping one invalidates every cached file of that kind —
// bump on any change to the export structs, the gob encoding, or the build
// semantics behind them. The binary fingerprint already invalidates on any
// code change when VCS stamping is available; these versions are the manual
// override that works everywhere.
const (
	// v2: scenario.Export gained the casting fields (Eyeball, MLab, Outage,
	// FailureCandidates), which ride in the world payload and inside every
	// campaign payload.
	worldCodecVersion    = "world-gob-v2"
	ribCodecVersion      = "rib-gob-v1"
	campaignCodecVersion = "campaign-gob-v2"
)

// The payloads are gob over map-free export structs whose slices are in
// canonical order, which makes encoding deterministic (gob writes struct
// fields in declaration order and slices in element order) — a requirement,
// since the envelope's checksum treats the payload as content-addressed
// bytes. Floats round-trip bit-exactly through gob, so a decoded artifact
// reproduces byte-identical experiment output.

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(b []byte, v any) (err error) {
	// gob decoding of arbitrary bytes can panic deep inside reflection on
	// pathological type descriptions; the disk tier promises "never panic on
	// hostile bytes", so the recover here converts any such panic into a
	// plain decode error (which the tier counts as corruption and rebuilds).
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("gob decode panic: %v", r)
		}
	}()
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}

// EncodeWorldArtifact serializes a scenario world for the disk tier.
func EncodeWorldArtifact(s *scenario.World) ([]byte, error) {
	return gobEncode(s.Export())
}

// DecodeWorldArtifact reconstructs a world from EncodeWorldArtifact bytes,
// validating every cross-reference; arbitrary bytes error, never panic.
func DecodeWorldArtifact(b []byte) (*scenario.World, error) {
	var e scenario.Export
	if err := gobDecode(b, &e); err != nil {
		return nil, fmt.Errorf("world artifact: %w", err)
	}
	return scenario.Import(&e)
}

// EncodeRIBArtifact serializes a converged RIB for the disk tier.
func EncodeRIBArtifact(r *bgp.RIB) ([]byte, error) {
	return gobEncode(r.Export())
}

// DecodeRIBArtifact reconstructs a RIB from EncodeRIBArtifact bytes,
// rebound onto t with pool for incremental recomputation — mirroring how
// the RIB artifact's Build computes over its own private world.
func DecodeRIBArtifact(b []byte, t *topo.Topology, pool parallel.Pool) (*bgp.RIB, error) {
	var e bgp.Export
	if err := gobDecode(b, &e); err != nil {
		return nil, fmt.Errorf("rib artifact: %w", err)
	}
	return bgp.Import(&e, t, pool)
}

// campaignExport is the campaign artifact's payload: the post-simulation
// world (joins and flaps applied) plus every measurement in ingestion
// order. The platform store's indexes are rebuilt on import, not stored.
type campaignExport struct {
	World        *scenario.Export
	Measurements []*probe.Measurement
}

// EncodeCampaignArtifact serializes a simulated campaign for the disk tier.
func EncodeCampaignArtifact(w *scenario.World, st *platform.Store) ([]byte, error) {
	return gobEncode(&campaignExport{World: w.Export(), Measurements: st.ExportMeasurements()})
}

// DecodeCampaignArtifact reconstructs a campaign — world and measurement
// store — from EncodeCampaignArtifact bytes. The store replays ingestion,
// rebuilding dedup and coverage indexes; every record is validated.
func DecodeCampaignArtifact(b []byte) (*scenario.World, *platform.Store, error) {
	var e campaignExport
	if err := gobDecode(b, &e); err != nil {
		return nil, nil, fmt.Errorf("campaign artifact: %w", err)
	}
	w, err := scenario.Import(e.World)
	if err != nil {
		return nil, nil, fmt.Errorf("campaign artifact: %w", err)
	}
	st, err := platform.ImportStore(e.Measurements)
	if err != nil {
		return nil, nil, fmt.Errorf("campaign artifact: %w", err)
	}
	return w, st, nil
}
