package experiments

import (
	"context"
	"fmt"

	"sisyphus/internal/causal/data"
	"sisyphus/internal/causal/estimate"
	"sisyphus/internal/mathx"
	"sisyphus/internal/netsim/engine"
	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/netsim/traffic"
	"sisyphus/internal/parallel"
	"sisyphus/internal/platform"
	"sisyphus/internal/probe"
)

// MLabResult reproduces §3's randomization argument: the M-Lab load
// balancer assigns each test to a random site in the metro, so the
// between-site performance contrast identifies the causal effect of the
// (routing to the) site — a genuine randomized experiment.
type MLabResult struct {
	Tests int
	// Randomized is the difference in mean RTT, site B − site A, from the
	// load-balanced assignment.
	Randomized estimate.Estimate
	// TrueEffect is the simulator's per-hour mean contrast between the two
	// sites measured directly.
	TrueEffect float64
	// SelfSelected is the biased contrast produced when congestion-affected
	// users disproportionately choose site A (no randomization) — the
	// comparison that motivates the load balancer.
	SelfSelected estimate.Estimate
}

// Render prints the comparison.
func (r *MLabResult) Render() string {
	t := &table{header: []string{"assignment", "site-B − site-A RTT (ms)", "SE", "p"}}
	t.add("randomized (load balancer)", fmt.Sprintf("%+.3f", r.Randomized.Effect),
		fmt.Sprintf("%.3f", r.Randomized.SE), fmt.Sprintf("%.3f", r.Randomized.PValue()))
	t.add("self-selected (state-dependent)", fmt.Sprintf("%+.3f", r.SelfSelected.Effect),
		fmt.Sprintf("%.3f", r.SelfSelected.SE), fmt.Sprintf("%.3f", r.SelfSelected.PValue()))
	t.add("GROUND TRUTH contrast", fmt.Sprintf("%+.3f", r.TrueEffect), "-", "-")
	return fmt.Sprintf("M-Lab randomization (§3): load-balanced server assignment as an RCT\n(%d tests)\n\n%s", r.Tests, t.String())
}

// RunMLab simulates a metro with two M-Lab sites hosted in different ASes.
// Site B's host sits behind a periodically congested transit. Randomized
// assignment recovers the true routing contrast; self-selected assignment
// (users on congested paths prefer site A) is biased. The world comes from
// o.Scenario (default the South Africa world) and must cast an M-Lab metro
// (scenario.MLabCast).
func RunMLab(ctx context.Context, pool parallel.Pool, seed uint64, o WorldOptions) (*MLabResult, error) {
	hours := o.Hours
	if hours <= 0 {
		hours = 1200
	}
	res := &MLabResult{}
	var sim *mlabSim
	var fr, fs *data.Frame
	err := stagedRun(ctx, "mlab", func(ctx context.Context) error {
		var err error
		sim, err = mlabScenario(ctx, pool, scenarioOr(o.Scenario), seed, hours)
		return err
	}, func(ctx context.Context) error {
		var err error
		if fr, err = data.FromColumns(map[string][]float64{"site": sim.randSite, "rtt": sim.randRTT}); err != nil {
			return err
		}
		fs, err = data.FromColumns(map[string][]float64{"site": sim.selfSite, "rtt": sim.selfRTT})
		return err
	}, func(ctx context.Context) error {
		var err error
		res.Tests = len(sim.randSite) + len(sim.selfSite)
		res.TrueEffect = sim.trueSum / float64(sim.trueN)
		if res.Randomized, err = estimate.NaiveAssociation(fr, "site", "rtt"); err != nil {
			return err
		}
		res.Randomized.Method = "randomized difference in means"
		if res.SelfSelected, err = estimate.NaiveAssociation(fs, "site", "rtt"); err != nil {
			return err
		}
		res.SelfSelected.Method = "self-selected difference in means"
		return nil
	}, nil)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// mlabSim holds the raw per-hour test outcomes from the two assignment arms
// plus the direct-measurement ground truth.
type mlabSim struct {
	randSite, randRTT []float64
	selfSite, selfRTT []float64
	trueSum           float64
	trueN             int
}

// mlabScenario builds the cast metro with a periodically congested site-B
// transit and simulates both assignment arms hour by hour. The world must
// cast an M-Lab metro (scenario.MLabCast) with two server ASes.
func mlabScenario(ctx context.Context, pool parallel.Pool, scenarioID string, seed uint64, hours int) (*mlabSim, error) {
	s, rib, err := fetchWorld(ctx, pool, scenarioID)
	if err != nil {
		return nil, err
	}
	cast, err := s.RequireMLab()
	if err != nil {
		return nil, fmt.Errorf("experiments: world %q: %w", scenarioID, err)
	}
	e := engine.New(s.Topo, seed, engine.Config{Pool: pool, InitialRIB: rib}).Bind(ctx)
	pr := probe.NewProber(e, seed+1)

	// Congest the site-B side periodically.
	rel, err := s.Topo.Relationships()
	if err != nil {
		return nil, err
	}
	crowdRNG := mathx.NewRNG(seed + 2)
	hostBLink, err := cast.CongestedUplink.Resolve(rel)
	if err != nil {
		return nil, fmt.Errorf("experiments: world %q: %w", scenarioID, err)
	}
	for h := 12.0; h < float64(hours); h += 30 + 40*crowdRNG.Float64() {
		e.Traffic.AddFlashCrowd(traffic.FlashCrowd{
			Link: hostBLink, StartHour: h, Hours: 8 + 8*crowdRNG.Float64(), Magnitude: 0.3 + 0.2*crowdRNG.Float64(),
		})
	}

	var servers []topo.PoPID
	for _, asn := range s.MLabServerASNs {
		id, err := s.Topo.FindPoP(asn, cast.ServerCity)
		if err != nil {
			return nil, err
		}
		servers = append(servers, id)
	}
	lb, err := platform.NewMLabPool("metro", servers, seed+3)
	if err != nil {
		return nil, err
	}
	user, err := s.Topo.FindPoP(cast.UserASN, cast.UserCity)
	if err != nil {
		return nil, err
	}

	selRNG := mathx.NewRNG(seed + 4)
	sim := &mlabSim{}
	for e.Hour() < float64(hours) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := e.Step(); err != nil {
			return nil, err
		}
		// Randomized arm: one LB-assigned test per hour.
		m, idx, err := lb.RunTest(pr, user)
		if err != nil {
			return nil, err
		}
		sim.randSite = append(sim.randSite, float64(idx))
		sim.randRTT = append(sim.randRTT, m.RTTms)

		// Ground truth: measure both sites directly this hour.
		pa, err := e.Perf(user, servers[0])
		if err != nil {
			return nil, err
		}
		pb, err := e.Perf(user, servers[1])
		if err != nil {
			return nil, err
		}
		sim.trueSum += pb.RTTms - pa.RTTms
		sim.trueN++

		// Self-selected arm: when site B's path is congested, users mostly
		// pick site A ("the one that works"), else uniform. This couples
		// assignment to network state, destroying exogeneity.
		var pick int
		if pb.MaxUtil > 0.7 {
			if selRNG.Bernoulli(0.85) {
				pick = 0
			} else {
				pick = 1
			}
		} else {
			pick = selRNG.Intn(2)
		}
		sm, err := pr.SpeedTestTo(user, servers[pick], probe.IntentUserInitiated, "self-select")
		if err != nil {
			return nil, err
		}
		sim.selfSite = append(sim.selfSite, float64(pick))
		sim.selfRTT = append(sim.selfRTT, sm.RTTms)
	}
	return sim, nil
}

func init() {
	defaults := WorldOptions{Hours: 1200}
	register(Experiment{
		ID:       "mlab",
		Paper:    "§3 randomization: M-Lab load balancing as a randomized experiment",
		Defaults: defaults,
		Run: func(ctx context.Context, cfg Config) (Renderable, error) {
			o, err := optionsOr(cfg, defaults)
			if err != nil {
				return nil, err
			}
			return RunMLab(ctx, cfg.Pool, cfg.Seed, o)
		},
	})
}
