package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"sync"
	"testing"

	"sisyphus/internal/parallel"
)

// goldenSuite runs the full seed-42 suite exactly once and shares the
// outcomes between the text and JSON golden checks.
var goldenSuite = sync.OnceValues(func() ([]RunOutcome, error) {
	return RunAll(context.Background(), Config{Seed: 42, Pool: parallel.Pool{}})
})

// reconstructs the CLI's `-all` byte stream from suite outcomes: section
// header, rendered table, and the blank line fmt.Println appends.
func suiteText(t *testing.T, outs []RunOutcome) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, oc := range outs {
		if oc.Err != nil {
			t.Fatalf("%s: %v", oc.Exp.ID, oc.Err)
		}
		buf.WriteString(oc.Exp.Header())
		buf.WriteString(oc.Res.Render())
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestSuiteTextMatchesGolden pins the refactor's headline acceptance
// criterion: the context-propagated pipeline must render every experiment
// byte-for-byte identically to the pre-refactor seed output captured in
// testdata/all_seed42.golden.txt (the same bytes `sisyphus -all -seed 42`
// prints).
func TestSuiteTextMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run")
	}
	want, err := os.ReadFile("testdata/all_seed42.golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	outs, err := goldenSuite()
	if err != nil {
		t.Fatal(err)
	}
	got := suiteText(t, outs)
	if !bytes.Equal(got, want) {
		t.Fatalf("suite text output drifted from golden (%d bytes vs %d); regenerate only if the change is intentional", len(got), len(want))
	}
}

// TestSuiteJSONMatchesGolden is the same pin for `-all -json -seed 42`:
// headers interleaved with indented JSON documents, one per experiment.
func TestSuiteJSONMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run")
	}
	want, err := os.ReadFile("testdata/all_seed42.golden.json")
	if err != nil {
		t.Fatal(err)
	}
	outs, err := goldenSuite()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, oc := range outs {
		if oc.Err != nil {
			t.Fatalf("%s: %v", oc.Exp.ID, oc.Err)
		}
		buf.WriteString(oc.Exp.Header())
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(oc.Res); err != nil {
			t.Fatalf("%s: %v", oc.Exp.ID, err)
		}
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("suite JSON output drifted from golden (%d bytes vs %d)", buf.Len(), len(want))
	}
}
