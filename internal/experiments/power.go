package experiments

import (
	"context"
	"fmt"

	"sisyphus/internal/causal/power"
	"sisyphus/internal/causal/synthetic"
	"sisyphus/internal/parallel"
)

// PowerOptions sizes the Monte-Carlo power analysis.
type PowerOptions struct {
	Trials int // simulated studies per point on the power curve
}

func (PowerOptions) experimentOptions() {}

// PowerResult is the §4 design-planning analysis: the detection power of
// the Table 1 study design across effect sizes, and its minimum detectable
// effect. It turns the paper's empirical verdict ("the effect is neither
// consistent nor robust") into a design statement: effects below the MDE
// were never going to be significant in this design, no matter how real.
type PowerResult struct {
	Design power.SCDesign
	Alpha  float64
	// Curve maps effect size (ms) to detection power.
	Effects []float64
	Power   []float64
	// MDE80 is the minimum effect detectable with 80% power.
	MDE80 float64
}

// Render prints the curve and the punchline.
func (r *PowerResult) Render() string {
	t := &table{header: []string{"true effect (ms)", "detection power"}}
	for i := range r.Effects {
		t.add(fmt.Sprintf("%.1f", r.Effects[i]), fmt.Sprintf("%.2f", r.Power[i]))
	}
	return fmt.Sprintf(`Design planning (§4): power of the Table 1 study design
(%d donors, %d pre + %d post bins, %.1f ms unit noise, placebo test at α=%.2f)

%s
minimum detectable effect at 80%% power: %.2f ms

Reading: several of the paper's units moved by less than this — their
"not significant" rows are a property of the DESIGN's resolution, not
evidence of no effect. §4's point exactly: plan the measurement so the
effect of interest is identifiable, or know in advance that it is not.
`, r.Design.Donors, r.Design.PrePeriods, r.Design.PostPeriods, r.Design.UnitNoise,
		r.Alpha, t.String(), r.MDE80)
}

// RunPower evaluates the Table-1-like design. Monte-Carlo trials shard
// across pool; results are bit-identical at any width.
func RunPower(ctx context.Context, pool parallel.Pool, seed uint64, trials int) (*PowerResult, error) {
	if trials <= 0 {
		trials = 120
	}
	d := power.SCDesign{
		Donors: 18, PrePeriods: 42, PostPeriods: 42,
		UnitNoise: 1.2, Method: synthetic.Robust,
	}
	const alpha = 0.06 // just above the design's min p of 1/19
	res := &PowerResult{Design: d, Alpha: alpha}
	err := stagedRun(ctx, "power", nil, nil, func(ctx context.Context) error {
		// All the work is estimation: Monte-Carlo detection power across the
		// effect grid, then the bisection for the minimum detectable effect.
		for _, eff := range []float64{0, 0.5, 1, 1.5, 2, 3, 5} {
			p, err := d.Power(ctx, pool, eff, alpha, trials, seed)
			if err != nil {
				return err
			}
			res.Effects = append(res.Effects, eff)
			res.Power = append(res.Power, p)
		}
		mde, err := d.MinDetectableEffect(ctx, pool, alpha, 0.8, 8, trials/2, seed+1)
		if err != nil {
			return err
		}
		res.MDE80 = mde
		return nil
	}, nil)
	if err != nil {
		return nil, err
	}
	return res, nil
}

func init() {
	defaults := PowerOptions{Trials: 120}
	register(Experiment{
		ID:       "power",
		Paper:    "§4 design planning: can this study detect the effects it is looking for?",
		Defaults: defaults,
		Run: func(ctx context.Context, cfg Config) (Renderable, error) {
			o, err := optionsOr(cfg, defaults)
			if err != nil {
				return nil, err
			}
			return RunPower(ctx, cfg.Pool, cfg.Seed, o.Trials)
		},
	})
}
