package experiments

import (
	"context"
	"fmt"

	"sisyphus/internal/causal/data"
	"sisyphus/internal/causal/estimate"
	"sisyphus/internal/mathx"
	"sisyphus/internal/netsim/engine"
	"sisyphus/internal/netsim/traffic"
	"sisyphus/internal/parallel"
	"sisyphus/internal/platform"
	"sisyphus/internal/probe"
)

// FamilyKnobResult demonstrates §4's proposal (3) concretely: toggling the
// IP family of a measurement changes the AS path without reference to
// network state, so the family bit is a *designed* instrument for the
// route's effect on RTT. The client randomizes the family per test; the v6
// plane is pinned to the alternate transit; 2SLS over the family bit
// recovers the route effect even though congestion confounds the
// endogenous route variation.
type FamilyKnobResult struct {
	Tests int
	// NaiveOLS regresses RTT on the observed route over all tests.
	NaiveOLS estimate.Estimate
	// FamilyIV uses the randomized family bit as the instrument.
	FamilyIV *estimate.IVResult
	// TrueEffect is the per-hour forced-route contrast at calm hours.
	TrueEffect float64
}

// Render prints the comparison.
func (r *FamilyKnobResult) Render() string {
	t := &table{header: []string{"estimator", "effect of alternate route on RTT (ms)", "SE", "1st-stage F"}}
	t.add("naive OLS on observed route", fmt.Sprintf("%+.3f", r.NaiveOLS.Effect),
		fmt.Sprintf("%.3f", r.NaiveOLS.SE), "-")
	t.add("2SLS, family-toggle instrument", fmt.Sprintf("%+.3f", r.FamilyIV.Effect),
		fmt.Sprintf("%.3f", r.FamilyIV.SE), fmt.Sprintf("%.1f", r.FamilyIV.FirstStageF))
	t.add("GROUND TRUTH do(R) at calm hours", fmt.Sprintf("%+.3f", r.TrueEffect), "-", "-")
	return fmt.Sprintf("IPv4/IPv6 toggle as a designed instrument (§4 proposal 3)\n(%d tests, family randomized per test)\n\n%s", r.Tests, t.String())
}

// RunFamilyKnob wires the experiment: the v6 plane of the cast eyeball is
// pinned to its alternate transit while v4 follows the endogenous
// (congestion-coupled, adaptive) default. Each hour the client flips a fair
// coin for the family. Because the coin is independent of network state,
// family ⊥ congestion — a valid instrument even though route choice itself
// is endogenous on v4. The world comes from o.Scenario (default the South
// Africa world) and must cast a multihomed eyeball.
func RunFamilyKnob(ctx context.Context, pool parallel.Pool, seed uint64, o WorldOptions) (*FamilyKnobResult, error) {
	hours := o.Hours
	if hours <= 0 {
		hours = 1500
	}
	res := &FamilyKnobResult{}
	var sim *familyKnobSim
	var f *data.Frame
	err := stagedRun(ctx, "familyknob", func(ctx context.Context) error {
		var err error
		sim, err = familyKnobScenario(ctx, pool, scenarioOr(o.Scenario), seed, hours)
		return err
	}, func(ctx context.Context) error {
		var err error
		f, err = data.FromColumns(map[string][]float64{"Z": sim.zCol, "R": sim.rCol, "L": sim.lCol})
		return err
	}, func(ctx context.Context) error {
		var err error
		res.Tests = len(sim.zCol)
		res.TrueEffect = sim.trueSum / float64(sim.trueN)
		if res.NaiveOLS, err = estimate.Regression(f, "R", "L", nil); err != nil {
			return err
		}
		res.FamilyIV, err = estimate.TwoSLS(f, "R", "L", []string{"Z"}, nil)
		return err
	}, nil)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// familyKnobSim holds the per-test columns (family bit, observed route, RTT)
// and the calm-hour ground truth.
type familyKnobSim struct {
	zCol, rCol, lCol []float64
	trueSum          float64
	trueN            int
}

// familyKnobScenario pins the v6 plane to the alternate transit and runs the
// per-hour randomized family toggles. The world must cast a multihomed
// eyeball (scenario.EyeballCast).
func familyKnobScenario(ctx context.Context, pool parallel.Pool, scenarioID string, seed uint64, hours int) (*familyKnobSim, error) {
	s, rib, err := fetchWorld(ctx, pool, scenarioID)
	if err != nil {
		return nil, err
	}
	cast, err := s.RequireEyeball()
	if err != nil {
		return nil, fmt.Errorf("experiments: world %q: %w", scenarioID, err)
	}
	dst := s.MeasureDst()
	e := engine.New(s.Topo, seed, engine.Config{AdaptiveEgress: true, Pool: pool, InitialRIB: rib}).Bind(ctx)
	pr := probe.NewProber(e, seed+1)
	knobs := platform.NewKnobs(pr, seed+2)

	rel, err := s.Topo.Relationships()
	if err != nil {
		return nil, err
	}
	primary := rel.Links[cast.ASN][cast.Primary][0]
	crowdRNG := mathx.NewRNG(seed + 3)
	for h := 30.0; h < float64(hours); h += 40 + 50*crowdRNG.Float64() {
		e.Traffic.AddFlashCrowd(traffic.FlashCrowd{
			Link: primary, StartHour: h, Hours: 6 + 10*crowdRNG.Float64(), Magnitude: 0.3 + 0.2*crowdRNG.Float64(),
		})
	}
	// Pin the v6 plane to the alternate transit for the whole study.
	if _, err := knobs.ForceUpstreamFamily(engine.V6, cast.ASN, cast.Alternate); err != nil {
		return nil, err
	}

	src, err := s.Topo.FindPoP(cast.ASN, cast.City)
	if err != nil {
		return nil, err
	}

	sim := &familyKnobSim{}
	inCrowd := func(h float64) bool {
		u := e.Utilization(primary)
		_ = h
		return u > 0.75
	}
	for e.Hour() < float64(hours) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := e.Step(); err != nil {
			return nil, err
		}
		fam := engine.V4
		z := 0.0
		if knobs.CoinFlip() {
			fam, z = engine.V6, 1
		}
		m, err := pr.SpeedTestFamily(src, dst, fam, probe.IntentExperiment, "family-toggle")
		if err != nil {
			return nil, err
		}
		onAlt := 0.0
		for _, asn := range m.ASPath {
			if asn == cast.Alternate {
				onAlt = 1
			}
		}
		sim.zCol = append(sim.zCol, z)
		sim.rCol = append(sim.rCol, onAlt)
		sim.lCol = append(sim.lCol, m.RTTms)

		if !inCrowd(e.Hour()) {
			va, vp, err := forcedContrast(e, cast, dst, src)
			if err != nil {
				return nil, err
			}
			sim.trueSum += va - vp
			sim.trueN++
		}
	}
	return sim, nil
}

func init() {
	defaults := WorldOptions{Hours: 1500}
	register(Experiment{
		ID:       "familyknob",
		Paper:    "§4 proposal 3: IPv4/IPv6 toggle as an exogenous-variation knob (instrument)",
		Defaults: defaults,
		Run: func(ctx context.Context, cfg Config) (Renderable, error) {
			o, err := optionsOr(cfg, defaults)
			if err != nil {
				return nil, err
			}
			return RunFamilyKnob(ctx, cfg.Pool, cfg.Seed, o)
		},
	})
}
