package experiments

import (
	"context"
	"fmt"

	"sisyphus/internal/mathx"
	"sisyphus/internal/netsim/engine"
	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/netsim/traffic"
	"sisyphus/internal/parallel"
	"sisyphus/internal/platform"
	"sisyphus/internal/probe"
)

// IntentResult demonstrates §4's platform proposals: with intent tags, an
// analyst can separate user-initiated (selection-biased) samples from
// baseline (unconditional) samples in one mixed dataset. Tag-blind pooling
// inherits the bias; the baseline stratum recovers the truth.
type IntentResult struct {
	Hours int
	// TrueMeanRTT is the population mean RTT over all hours.
	TrueMeanRTT float64
	// BaselineMean is the mean over IntentBaseline records.
	BaselineMean float64
	// UserMean is the mean over IntentUserInitiated records (biased high:
	// users test when things are bad).
	UserMean float64
	// PooledMean is the tag-blind mean over everything.
	PooledMean float64
	// TriggeredCount shows conditional activation volume (BGP-triggered).
	TriggeredCount int
	BaselineCount  int
	UserCount      int
}

// Render prints the bias decomposition.
func (r *IntentResult) Render() string {
	t := &table{header: []string{"sample", "n", "mean RTT (ms)", "bias vs truth"}}
	t.add("population (ground truth)", "-", fmt.Sprintf("%.2f", r.TrueMeanRTT), "-")
	t.add("baseline-tagged", fmt.Sprintf("%d", r.BaselineCount), fmt.Sprintf("%.2f", r.BaselineMean),
		fmt.Sprintf("%+.2f", r.BaselineMean-r.TrueMeanRTT))
	t.add("user-initiated-tagged", fmt.Sprintf("%d", r.UserCount), fmt.Sprintf("%.2f", r.UserMean),
		fmt.Sprintf("%+.2f", r.UserMean-r.TrueMeanRTT))
	t.add("pooled, tag-blind", fmt.Sprintf("%d", r.UserCount+r.BaselineCount), fmt.Sprintf("%.2f", r.PooledMean),
		fmt.Sprintf("%+.2f", r.PooledMean-r.TrueMeanRTT))
	return fmt.Sprintf("Intent tagging & conditional activation (§4)\n(%d hours; %d BGP-triggered traceroutes captured route changes)\n\n%s",
		r.Hours, r.TriggeredCount, t.String())
}

// RunIntent runs a mixed measurement campaign — scheduled baselines,
// endogenous user tests, and BGP-triggered traceroutes — over a world with
// congestion episodes and occasional reroutes, then contrasts the analyses
// the intent tags make possible.
func RunIntent(ctx context.Context, pool parallel.Pool, seed uint64, hours int) (*IntentResult, error) {
	if hours <= 0 {
		hours = 1500
	}
	res := &IntentResult{Hours: hours}
	store := platform.NewStore()
	var truthSum float64
	var truthN int
	var base, user []*probe.Measurement
	err := stagedRun(ctx, "intent", func(ctx context.Context) error {
		return intentScenario(ctx, pool, seed, hours, store, &truthSum, &truthN)
	}, func(ctx context.Context) error {
		base = store.ByIntent(probe.IntentBaseline)
		user = store.ByIntent(probe.IntentUserInitiated)
		return nil
	}, func(ctx context.Context) error {
		// Compare on TrueRTTms so the contrast isolates pure selection bias:
		// measured values differ from true ones only by i.i.d. jitter, which
		// is identical in distribution across intents.
		mean := func(ms []*probe.Measurement) float64 {
			if len(ms) == 0 {
				return 0
			}
			var s float64
			for _, m := range ms {
				s += m.TrueRTTms
			}
			return s / float64(len(ms))
		}
		res.TrueMeanRTT = truthSum / float64(truthN)
		res.BaselineMean = mean(base)
		res.UserMean = mean(user)
		res.PooledMean = mean(append(append([]*probe.Measurement(nil), base...), user...))
		res.TriggeredCount = len(store.ByIntent(probe.IntentTriggered))
		res.BaselineCount = len(base)
		res.UserCount = len(user)
		return nil
	}, nil)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// intentScenario builds the dual-transit eyeball world and runs the mixed
// campaign — user tests, scheduled baselines, BGP-triggered traceroutes —
// landing everything in the store while tracking the population truth.
func intentScenario(ctx context.Context, pool parallel.Pool, seed uint64, hours int, store *platform.Store, truthSum *float64, truthN *int) error {
	b := topo.NewBuilder(nil).
		AddAS(100, "T-A", topo.Transit, "Johannesburg").
		AddAS(101, "T-B", topo.Transit, "Johannesburg").
		AddAS(7000, "Eyeball", topo.Access, "Johannesburg").
		AddAS(4001, "Content", topo.Content, "Johannesburg").
		Connect(7000, "Johannesburg", topo.CustomerOf, 100, "Johannesburg", topo.WithBaseUtil(0.45)).
		Connect(7000, "Johannesburg", topo.CustomerOf, 101, "Johannesburg", topo.WithBaseUtil(0.4)).
		Connect(4001, "Johannesburg", topo.CustomerOf, 100, "Johannesburg", topo.WithBaseUtil(0.4)).
		Connect(4001, "Johannesburg", topo.CustomerOf, 101, "Johannesburg", topo.WithBaseUtil(0.4))
	tp, err := b.Build()
	if err != nil {
		return err
	}
	e := engine.New(tp, seed, engine.Config{AdaptiveEgress: true, Pool: pool}).Bind(ctx)
	pr := probe.NewProber(e, seed+1)
	src, err := tp.FindPoP(7000, "Johannesburg")
	if err != nil {
		return err
	}
	rel, err := tp.Relationships()
	if err != nil {
		return err
	}
	crowdRNG := mathx.NewRNG(seed + 2)
	for h := 20.0; h < float64(hours); h += 40 + 60*crowdRNG.Float64() {
		e.Traffic.AddFlashCrowd(traffic.FlashCrowd{
			Link: rel.Links[7000][100][0], StartHour: h,
			Hours: 6 + 10*crowdRNG.Float64(), Magnitude: 0.35 + 0.2*crowdRNG.Float64(),
		})
	}

	um := platform.NewUserModel([]platform.UserPop{{Src: src, Dst: 4001, Size: 1}}, seed+3)
	um.BaseRate = 0.1
	um.PerfBoost = 6
	baseline := platform.NewBaseline(src, 4001, 4)

	rib, err := e.RIB()
	if err != nil {
		return err
	}
	dst, err := rib.NearestPoP(src, 4001)
	if err != nil {
		return err
	}
	watch := platform.NewBGPWatch(src, dst)

	for e.Hour() < float64(hours) {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := e.Step(); err != nil {
			return err
		}
		perf, err := e.PerfToAS(src, 4001)
		if err != nil {
			return err
		}
		*truthSum += perf.RTTms
		*truthN++

		_, ms, err := um.Step(pr)
		if err != nil {
			return err
		}
		if err := store.Add(ms...); err != nil {
			return err
		}
		if m, err := baseline.Step(pr); err != nil {
			return err
		} else if m != nil {
			if err := store.Add(m); err != nil {
				return err
			}
		}
		if m, err := watch.Step(pr); err != nil {
			return err
		} else if m != nil {
			if err := store.Add(m); err != nil {
				return err
			}
		}
	}
	return nil
}

func init() {
	defaults := HorizonOptions{Hours: 1500}
	register(Experiment{
		ID:       "intent",
		Paper:    "§4 proposals: intent tags separate biased and unbiased samples; triggers capture changes",
		Defaults: defaults,
		Run: func(ctx context.Context, cfg Config) (Renderable, error) {
			o, err := optionsOr(cfg, defaults)
			if err != nil {
				return nil, err
			}
			return RunIntent(ctx, cfg.Pool, cfg.Seed, o.Hours)
		},
	})
}
