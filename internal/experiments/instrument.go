package experiments

import (
	"context"
	"fmt"

	"sisyphus/internal/causal/dag"
	"sisyphus/internal/causal/data"
	"sisyphus/internal/causal/estimate"
	"sisyphus/internal/mathx"
	"sisyphus/internal/netsim/engine"
	"sisyphus/internal/netsim/traffic"
	"sisyphus/internal/parallel"
)

// IVResult reproduces §3's natural-experiment discussion: scheduled link
// maintenance as a *valid* instrument for route changes (its timing is
// exogenous), versus a load-coupled policy change as an *invalid* one (the
// exclusion restriction fails because the event moves congestion too).
type IVResult struct {
	Hours       int
	NaiveOLS    estimate.Estimate
	ValidIV     *estimate.IVResult
	InvalidIV   *estimate.IVResult
	TrueEffect  float64
	DAGValid    []string // instruments found by DAG analysis in the valid world
	DAGViolated []string // exclusion-violation paths for the invalid candidate
}

// Render prints the comparison.
func (r *IVResult) Render() string {
	t := &table{header: []string{"estimator", "effect of reroute on RTT (ms)", "SE", "1st-stage F"}}
	t.add("naive OLS", fmt.Sprintf("%+.3f", r.NaiveOLS.Effect), fmt.Sprintf("%.3f", r.NaiveOLS.SE), "-")
	t.add("2SLS, maintenance instrument (valid)", fmt.Sprintf("%+.3f", r.ValidIV.Effect),
		fmt.Sprintf("%.3f", r.ValidIV.SE), fmt.Sprintf("%.1f", r.ValidIV.FirstStageF))
	t.add("2SLS, load-coupled instrument (invalid)", fmt.Sprintf("%+.3f", r.InvalidIV.Effect),
		fmt.Sprintf("%.3f", r.InvalidIV.SE), fmt.Sprintf("%.1f", r.InvalidIV.FirstStageF))
	t.add("GROUND TRUTH do(R) at calm hours", fmt.Sprintf("%+.3f", r.TrueEffect), "-", "-")
	return fmt.Sprintf("Natural experiments & instruments (§3)\n(%d hours)\n\n%s\nDAG: instruments found for maintenance world: %v\nDAG: exclusion violations for load-coupled candidate: %v\n",
		r.Hours, t.String(), r.DAGValid, r.DAGViolated)
}

// RunInstrument simulates the cast eyeball's dual-homed egress where
// unobserved congestion drives both route choice (adaptive egress) and RTT.
// Scheduled maintenance windows on the primary transit link force reroutes
// at exogenous times — a valid instrument. A second world couples the
// "policy flip" to flash crowds, breaking the exclusion restriction. The
// world comes from o.Scenario (default the South Africa world) and must
// cast a multihomed eyeball.
func RunInstrument(ctx context.Context, pool parallel.Pool, seed uint64, o WorldOptions) (*IVResult, error) {
	hours := o.Hours
	if hours <= 0 {
		hours = 2000
	}
	res := &IVResult{Hours: hours}
	var sim *ivSim
	var f *data.Frame
	err := stagedRun(ctx, "instrument", func(ctx context.Context) error {
		var err error
		sim, err = instrumentScenario(ctx, pool, scenarioOr(o.Scenario), seed, hours)
		return err
	}, func(ctx context.Context) error {
		var err error
		f, err = data.FromColumns(map[string][]float64{
			"R": sim.rCol, "L": sim.lCol, "Zmaint": sim.zMaint, "Zload": sim.zLoad,
		})
		return err
	}, func(ctx context.Context) error {
		var err error
		res.TrueEffect = sim.trueSum / float64(sim.trueN)
		if res.NaiveOLS, err = estimate.Regression(f, "R", "L", nil); err != nil {
			return err
		}
		if res.ValidIV, err = estimate.TwoSLS(f, "R", "L", []string{"Zmaint"}, nil); err != nil {
			return err
		}
		res.InvalidIV, err = estimate.TwoSLS(f, "R", "L", []string{"Zload"}, nil)
		return err
	}, func(ctx context.Context) error {
		// DAG-side analysis: in the valid world the maintenance node is an
		// instrument; in the invalid world the load-coupled candidate has an
		// unblocked non-treatment path to L.
		gValid := dag.MustParse("U [latent]; U -> R; U -> L; Zmaint -> R; R -> L")
		res.DAGValid = gValid.Instruments("R", "L")
		gInvalid := dag.MustParse("U [latent]; U -> R; U -> L; U -> Zload; Zload -> R; R -> L")
		for _, p := range gInvalid.ExclusionViolations("Zload", "R", "L") {
			res.DAGViolated = append(res.DAGViolated, p.String())
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// ivSim holds the observational columns and the complier ground truth the
// instrument scenario stage produces.
type ivSim struct {
	rCol, lCol, zMaint, zLoad []float64
	trueSum                   float64
	trueN                     int
}

// instrumentScenario builds the dual-homed world with unobserved congestion
// and exogenous maintenance windows, then simulates it hour by hour. The
// world must cast a multihomed eyeball (scenario.EyeballCast).
func instrumentScenario(ctx context.Context, pool parallel.Pool, scenarioID string, seed uint64, hours int) (*ivSim, error) {
	s, rib, err := fetchWorld(ctx, pool, scenarioID)
	if err != nil {
		return nil, err
	}
	cast, err := s.RequireEyeball()
	if err != nil {
		return nil, fmt.Errorf("experiments: world %q: %w", scenarioID, err)
	}
	dst := s.MeasureDst()
	e := engine.New(s.Topo, seed, engine.Config{AdaptiveEgress: true, Pool: pool, InitialRIB: rib}).Bind(ctx)
	rel, err := s.Topo.Relationships()
	if err != nil {
		return nil, err
	}
	primary := rel.Links[cast.ASN][cast.Primary][0]

	// Unobserved congestion: flash crowds on the primary link (the analyst
	// in this experiment does NOT get a congestion column — that is what
	// makes IV necessary).
	crowdRNG := mathx.NewRNG(seed + 1)
	var crowdHours [][2]float64
	for h := 30.0; h < float64(hours); h += 40 + 50*crowdRNG.Float64() {
		dur := 6 + 10*crowdRNG.Float64()
		e.Traffic.AddFlashCrowd(traffic.FlashCrowd{
			Link: primary, StartHour: h, Hours: dur, Magnitude: 0.3 + 0.2*crowdRNG.Float64(),
		})
		crowdHours = append(crowdHours, [2]float64{h, h + dur})
	}

	// Valid instrument: maintenance windows at exogenous times.
	maintRNG := mathx.NewRNG(seed + 2)
	var maintWindows [][2]float64
	for h := 50.0; h < float64(hours); h += 90 + 120*maintRNG.Float64() {
		dur := 5 + 6*maintRNG.Float64()
		start, end := engine.EvMaintenance(h, dur, primary)
		e.Schedule(start)
		e.Schedule(end)
		maintWindows = append(maintWindows, [2]float64{h, h + dur})
	}

	src, err := s.Topo.FindPoP(cast.ASN, cast.City)
	if err != nil {
		return nil, err
	}

	inWindow := func(ws [][2]float64, h float64) float64 {
		for _, w := range ws {
			if h >= w[0] && h < w[1] {
				return 1
			}
		}
		return 0
	}

	sim := &ivSim{}
	for e.Hour() < float64(hours) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := e.Step(); err != nil {
			return nil, err
		}
		perf, err := e.PerfToAS(src, dst)
		if err != nil {
			return nil, err
		}
		onAlt := 0.0
		for _, asn := range perf.Path.ASPath {
			if asn == cast.Alternate {
				onAlt = 1
			}
		}
		maintNow := inWindow(maintWindows, e.Hour())
		crowdNow := inWindow(crowdHours, e.Hour())
		sim.rCol = append(sim.rCol, onAlt)
		sim.lCol = append(sim.lCol, perf.RTTms)
		sim.zMaint = append(sim.zMaint, maintNow)
		// The invalid instrument: an indicator correlated with the
		// unobserved congestion (a "policy flip" announced exactly during
		// demand surges). It predicts reroutes — but also directly
		// coincides with congestion-inflated RTT.
		sim.zLoad = append(sim.zLoad, crowdNow)

		// Ground truth for the estimand the maintenance instrument
		// identifies: the reroute effect under ordinary conditions (the
		// compliers are hours where only the maintenance forced a switch).
		// Hours inside crowds or maintenance are excluded: during crowds
		// the effect is congestion-coupled, during maintenance the primary
		// cannot be forced at all.
		if maintNow == 0 && crowdNow == 0 {
			va, vp, err := forcedContrast(e, cast, dst, src)
			if err != nil {
				return nil, err
			}
			sim.trueSum += va - vp
			sim.trueN++
		}
	}
	return sim, nil
}

func init() {
	defaults := WorldOptions{Hours: 2000}
	register(Experiment{
		ID:       "instrument",
		Paper:    "§3 natural experiments: maintenance as a valid IV, load-coupled policy as invalid",
		Defaults: defaults,
		Run: func(ctx context.Context, cfg Config) (Renderable, error) {
			o, err := optionsOr(cfg, defaults)
			if err != nil {
				return nil, err
			}
			return RunInstrument(ctx, cfg.Pool, cfg.Seed, o)
		},
	})
}
