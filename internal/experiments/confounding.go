package experiments

import (
	"context"
	"fmt"

	"sisyphus/internal/causal/dag"
	"sisyphus/internal/causal/data"
	"sisyphus/internal/causal/estimate"
	"sisyphus/internal/mathx"
	"sisyphus/internal/netsim/bgp"
	"sisyphus/internal/netsim/engine"
	"sisyphus/internal/netsim/scenario"
	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/netsim/traffic"
	"sisyphus/internal/parallel"
)

// ConfoundingResult reproduces the §3 running example: congestion C causes
// both route changes R (via load-adaptive egress) and latency L (via
// queueing), so the naive P(L | R) contrast is biased. The simulator
// provides the ground-truth interventional effect for comparison.
type ConfoundingResult struct {
	Hours       int
	RouteShare  float64 // fraction of hours spent on the alternate route
	Naive       estimate.Estimate
	Stratified  estimate.Estimate
	Regression  estimate.Estimate
	IPW         estimate.Estimate
	TrueEffect  float64 // ground truth: mean per-hour forced-route contrast
	DAGAnalysis string
}

// Render prints the estimator comparison.
func (r *ConfoundingResult) Render() string {
	t := &table{header: []string{"estimator", "effect of route change on RTT (ms)", "SE", "p"}}
	add := func(e estimate.Estimate) {
		t.add(e.Method, fmt.Sprintf("%+.3f", e.Effect), fmt.Sprintf("%.3f", e.SE), fmt.Sprintf("%.3f", e.PValue()))
	}
	add(r.Naive)
	add(r.Stratified)
	add(r.Regression)
	add(r.IPW)
	t.add("GROUND TRUTH do(R)", fmt.Sprintf("%+.3f", r.TrueEffect), "-", "-")
	return fmt.Sprintf("Running example (§3): congestion confounds routing and latency\n(%d hours simulated, alternate route used %.0f%% of the time)\n\n%s\nDAG analysis:\n%s",
		r.Hours, 100*r.RouteShare, t.String(), r.DAGAnalysis)
}

// RunConfounding simulates a multihomed access network whose egress
// controller shifts to its backup transit under congestion, while the same
// congestion inflates RTT. It compares naive, stratified, regression and
// IPW estimates of the route's effect against the simulator's ground truth
// obtained by pinning the route both ways at every sampled hour. The world
// comes from o.Scenario (default the South Africa world) and must cast a
// multihomed eyeball.
func RunConfounding(ctx context.Context, pool parallel.Pool, seed uint64, o WorldOptions) (*ConfoundingResult, error) {
	hours := o.Hours
	if hours <= 0 {
		hours = 1500
	}
	res := &ConfoundingResult{Hours: hours}
	var sim *confoundingSim
	var f *data.Frame
	err := stagedRun(ctx, "confounding", func(ctx context.Context) error {
		var err error
		sim, err = confoundingScenario(ctx, pool, scenarioOr(o.Scenario), seed, hours)
		return err
	}, func(ctx context.Context) error {
		var err error
		f, err = data.FromColumns(map[string][]float64{
			"R": sim.rCol, "L": sim.lCol, "C": sim.cCol, "hour": sim.hourCol,
		})
		return err
	}, func(ctx context.Context) error {
		var err error
		res.RouteShare = sim.altShare / float64(len(sim.rCol))
		if res.Naive, err = estimate.NaiveAssociation(f, "R", "L"); err != nil {
			return err
		}
		if res.Stratified, err = estimate.Stratified(f, "R", "L", []string{"C"}, 10); err != nil {
			return err
		}
		if res.Regression, err = estimate.Regression(f, "R", "L", []string{"C"}); err != nil {
			return err
		}
		if res.IPW, err = estimate.IPW(f, "R", "L", []string{"C"}, 0.01); err != nil {
			return err
		}
		res.TrueEffect = sim.trueSum / float64(sim.trueN)
		return nil
	}, func(ctx context.Context) error {
		// The planning-side DAG analysis the paper advocates doing first.
		g := dag.MustParse("C -> R; C -> L; R -> L")
		sets, err := g.MinimalAdjustmentSets("R", "L")
		if err != nil {
			return err
		}
		res.DAGAnalysis = fmt.Sprintf("  graph: C -> R; C -> L; R -> L\n  backdoor paths: %v\n  minimal adjustment sets: %v\n",
			pathStrings(g.BackdoorPaths("R", "L")), sets)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// confoundingSim holds the raw per-hour observational columns plus the
// interventional ground-truth accumulators the scenario stage produces.
type confoundingSim struct {
	rCol, lCol, cCol, hourCol []float64
	altShare                  float64
	trueSum                   float64
	trueN                     int
}

// confoundingScenario builds the named world with a load-adaptive egress,
// simulates it, and collects the observational columns plus the
// forced-route ground-truth contrast. The world must cast a multihomed
// eyeball (scenario.EyeballCast); worlds without one refuse with
// scenario.ErrCastingMissing.
func confoundingScenario(ctx context.Context, pool parallel.Pool, scenarioID string, seed uint64, hours int) (*confoundingSim, error) {
	s, rib, err := fetchWorld(ctx, pool, scenarioID)
	if err != nil {
		return nil, err
	}
	cast, err := s.RequireEyeball()
	if err != nil {
		return nil, fmt.Errorf("experiments: world %q: %w", scenarioID, err)
	}
	dst := s.MeasureDst()
	e := engine.New(s.Topo, seed, engine.Config{AdaptiveEgress: true, Pool: pool, InitialRIB: rib}).Bind(ctx)

	// The eyeball's content routes prefer its primary transit (shorter path,
	// lower ASN), so recurring flash crowds on that link trigger
	// load-adaptive shifts onto the alternate — congestion causing the route
	// change, the C → R edge of the running example.
	rel, err := s.Topo.Relationships()
	if err != nil {
		return nil, err
	}
	primary := rel.Links[cast.ASN][cast.Primary][0]
	rng := mathx.NewRNG(seed + 99)
	for h := 24.0; h < float64(hours); h += 48 + 24*rng.Float64() {
		e.Traffic.AddFlashCrowd(traffic.FlashCrowd{
			Link: primary, StartHour: h, Hours: 6 + 12*rng.Float64(), Magnitude: 0.35 + 0.2*rng.Float64(),
		})
	}

	src, err := s.Topo.FindPoP(cast.ASN, cast.City)
	if err != nil {
		return nil, err
	}

	// A slice of hours carries exogenous one-hour route forcings (the §4
	// "knob": operator-scheduled path tests). They guarantee that both
	// routes are observed at every congestion level — the positivity
	// condition adjustment estimators need. The remaining hours use
	// whatever the endogenous controller chose, which is where the
	// confounding lives.
	flipRNG := mathx.NewRNG(seed + 7)

	sim := &confoundingSim{}
	for e.Hour() < float64(hours) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := e.Step(); err != nil {
			return nil, err
		}
		var perf *engine.PathPerf
		switch {
		case flipRNG.Bernoulli(0.25):
			v, err := observeForced(e, cast, dst, src, cast.Alternate) // force primary
			if err != nil {
				return nil, err
			}
			perf = v
		case flipRNG.Bernoulli(1.0 / 3.0): // 0.25 of the original mass
			v, err := observeForced(e, cast, dst, src, cast.Primary) // force alternate
			if err != nil {
				return nil, err
			}
			perf = v
		default:
			v, err := e.PerfToAS(src, dst)
			if err != nil {
				return nil, err
			}
			perf = v
		}
		onAlt := 0.0
		for _, asn := range perf.Path.ASPath {
			if asn == cast.Alternate {
				onAlt = 1
			}
		}
		sim.altShare += onAlt
		sim.rCol = append(sim.rCol, onAlt)
		sim.lCol = append(sim.lCol, perf.RTTms)
		sim.cCol = append(sim.cCol, e.Utilization(primary))
		sim.hourCol = append(sim.hourCol, e.Hour())

		// Ground truth: force each route in turn, same instant, same noise.
		prefA, prefB, err := forcedContrast(e, cast, dst, src)
		if err != nil {
			return nil, err
		}
		sim.trueSum += prefA - prefB
		sim.trueN++
	}
	return sim, nil
}

// observeForced measures the eyeball's performance with the given transit
// avoided for one instant, restoring the policy afterwards.
func observeForced(e *engine.Engine, cast scenario.EyeballCast, dst topo.ASN, src topo.PoPID, avoid topo.ASN) (*engine.PathPerf, error) {
	asn := cast.ASN
	restore := savePrefs(e, asn, cast)
	defer restore()
	other := cast.Primary
	if avoid == cast.Primary {
		other = cast.Alternate
	}
	e.Policy.SetLocalPref(asn, avoid, 10)
	e.Policy.SetLocalPref(asn, other, bgp.PrefProvider)
	e.MarkDirty()
	return e.PerfToAS(src, dst)
}

// savePrefs snapshots AS a's local-pref overrides toward the two transits
// and returns a restore function.
func savePrefs(e *engine.Engine, asn topo.ASN, cast scenario.EyeballCast) func() {
	saved := map[topo.ASN]*int{}
	for _, n := range []topo.ASN{cast.Primary, cast.Alternate} {
		if m := e.Policy.LocalPref[asn]; m != nil {
			if v, ok := m[n]; ok {
				vv := v
				saved[n] = &vv
				continue
			}
		}
		saved[n] = nil
	}
	return func() {
		for n, v := range saved {
			if v == nil {
				e.Policy.ClearLocalPref(asn, n)
			} else {
				e.Policy.SetLocalPref(asn, n, *v)
			}
		}
		e.MarkDirty()
	}
}

// forcedContrast pins the eyeball's egress to each transit in turn and
// measures the true RTT under identical conditions: the do(R = alt) and
// do(R = primary) outcomes at this instant. Policy overrides are restored
// afterwards so the factual trajectory is untouched.
func forcedContrast(e *engine.Engine, cast scenario.EyeballCast, dst topo.ASN, src topo.PoPID) (viaAlt, viaPrimary float64, err error) {
	a, err := observeForced(e, cast, dst, src, cast.Primary) // avoid primary → via alt
	if err != nil {
		return 0, 0, err
	}
	b, err := observeForced(e, cast, dst, src, cast.Alternate) // avoid alt → via primary
	if err != nil {
		return 0, 0, err
	}
	return a.RTTms, b.RTTms, nil
}

func pathStrings(ps []dag.Path) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.String()
	}
	return out
}

func init() {
	defaults := WorldOptions{Hours: 1500}
	register(Experiment{
		ID:       "confounding",
		Paper:    "§3 running example: adjusting for congestion when estimating route → latency",
		Defaults: defaults,
		Run: func(ctx context.Context, cfg Config) (Renderable, error) {
			o, err := optionsOr(cfg, defaults)
			if err != nil {
				return nil, err
			}
			return RunConfounding(ctx, cfg.Pool, cfg.Seed, o)
		},
	})
}
