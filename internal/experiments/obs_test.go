package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"sisyphus/internal/obs"
	"sisyphus/internal/parallel"
)

// recordedSuite is one full seed-42 suite run with a live Recorder attached,
// shared by the bit-identity and trace-coverage tests so the suite is not
// re-run per assertion.
type recordedSuite struct {
	outs []RunOutcome
	rec  *obs.Recorder
}

// obsSeqSuite mirrors the CLI's sequential `-all -seed 42 -trace/-metrics`
// path: experiments run one by one, in ID order, on the calling goroutine.
var obsSeqSuite = sync.OnceValues(func() (*recordedSuite, error) {
	rec := obs.NewRecorder()
	ctx := obs.With(context.Background(), rec)
	cfg := Config{Seed: 42, Pool: parallel.Pool{}}
	var outs []RunOutcome
	for _, e := range All() {
		res, err := e.Run(ctx, cfg)
		if err != nil {
			return nil, err
		}
		outs = append(outs, RunOutcome{Exp: e, Res: res})
	}
	return &recordedSuite{outs: outs, rec: rec}, nil
})

// recordedSuiteForAssertions picks the shared recorded run the span- and
// metric-content tests read from. Under the race detector the sequential
// leg is skipped (see TestObservabilityOffBitIdentity), so the parallel
// run — whose recorded content is identical — serves instead.
func recordedSuiteForAssertions() (*recordedSuite, error) {
	if raceEnabled {
		return obsParSuite()
	}
	return obsSeqSuite()
}

// obsParSuite mirrors `-all -parallel -workers 4` with a live Recorder.
var obsParSuite = sync.OnceValues(func() (*recordedSuite, error) {
	rec := obs.NewRecorder()
	ctx := obs.With(context.Background(), rec)
	outs, err := RunAll(ctx, Config{Seed: 42, Pool: parallel.NewPool(4)})
	if err != nil {
		return nil, err
	}
	return &recordedSuite{outs: outs, rec: rec}, nil
})

// suiteJSON reconstructs the CLI's `-all -json` byte stream from outcomes.
func suiteJSON(t *testing.T, outs []RunOutcome) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, oc := range outs {
		if oc.Err != nil {
			t.Fatalf("%s: %v", oc.Exp.ID, oc.Err)
		}
		buf.WriteString(oc.Exp.Header())
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(oc.Res); err != nil {
			t.Fatalf("%s: %v", oc.Exp.ID, err)
		}
	}
	return buf.Bytes()
}

// TestObservabilityOffBitIdentity is the tentpole contract: attaching a live
// Recorder must not change one byte of experiment output — text or JSON,
// sequential or parallel — relative to a run with no recorder at all. The
// no-recorder baseline is the shared goldenSuite, itself pinned to the
// pre-observability goldens, so this transitively proves "flags off" and
// "flags on" agree with the seed output.
func TestObservabilityOffBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite runs")
	}
	base, err := goldenSuite()
	if err != nil {
		t.Fatal(err)
	}
	baseText, baseJSON := suiteText(t, base), suiteJSON(t, base)

	for _, c := range []struct {
		name string
		get  func() (*recordedSuite, error)
	}{
		{"sequential", obsSeqSuite},
		{"parallel-4", obsParSuite},
	} {
		t.Run(c.name, func(t *testing.T) {
			if c.name == "sequential" && raceEnabled {
				// One full suite run costs minutes under race
				// instrumentation, and the sequential leg adds no
				// concurrency for the detector to examine; the plain test
				// run covers it.
				t.Skip("sequential identity leg is covered without -race")
			}
			s, err := c.get()
			if err != nil {
				t.Fatal(err)
			}
			if got := suiteText(t, s.outs); !bytes.Equal(got, baseText) {
				t.Fatalf("text output with recorder differs from no-recorder run (%d vs %d bytes)", len(got), len(baseText))
			}
			if got := suiteJSON(t, s.outs); !bytes.Equal(got, baseJSON) {
				t.Fatalf("JSON output with recorder differs from no-recorder run (%d vs %d bytes)", len(got), len(baseJSON))
			}
		})
	}
}

// TestTraceCoversAllPipelineStages: a traced suite run must contain, for
// every registered experiment, a span for each of the four canonical seams —
// under the experiment's own scope. Experiments that delegate to another
// runner (chaos, did, tromboneera call the table1 pipeline) inherit that
// pipeline's stage names, so coverage is matched on the "/<seam>" suffix.
func TestTraceCoversAllPipelineStages(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run")
	}
	s, err := recordedSuiteForAssertions()
	if err != nil {
		t.Fatal(err)
	}
	seams := []string{"scenario", "dataset", "estimator", "report"}
	byScope := make(map[string]map[string]bool)
	for _, sp := range s.rec.Spans() {
		if byScope[sp.Scope] == nil {
			byScope[sp.Scope] = make(map[string]bool)
		}
		for _, seam := range seams {
			if strings.HasSuffix(sp.Name, "/"+seam) {
				byScope[sp.Scope][seam] = true
			}
		}
	}
	for _, e := range All() {
		got := byScope[e.ID]
		for _, seam := range seams {
			if !got[seam] {
				t.Errorf("experiment %s: no span for the %s seam (saw %v)", e.ID, seam, got)
			}
		}
	}
}

// TestTraceIsValidJSONL: every line WriteTrace emits for a real suite run
// must decode as a span object with a non-empty name.
func TestTraceIsValidJSONL(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run")
	}
	s, err := recordedSuiteForAssertions()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) < 4*len(All()) {
		t.Fatalf("only %d trace lines for %d experiments", len(lines), len(All()))
	}
	for i, line := range lines {
		var sp obs.Span
		if err := json.Unmarshal([]byte(line), &sp); err != nil {
			t.Fatalf("trace line %d invalid: %v", i+1, err)
		}
		if sp.Name == "" {
			t.Fatalf("trace line %d has no span name: %s", i+1, line)
		}
	}
}

// TestSuiteMetricsNonEmptyAndRoundTrip: a recorded suite run must actually
// collect the computed-but-discarded quantities (placebo fits, BGP sweeps,
// MC shards, fault drops, coverage), and the -metrics -json payload must
// survive a JSON round trip.
func TestSuiteMetricsNonEmptyAndRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run")
	}
	s, err := recordedSuiteForAssertions()
	if err != nil {
		t.Fatal(err)
	}
	m := s.rec.Metrics()
	for _, want := range []struct{ scope, name string }{
		{"table1", "placebo.fits_attempted"},
		{"table1", "placebo.tests"},
		{"table1", "store.delivered"},
		{"table1", "store.coverage"},
		{"collider", "bgp.sweeps"},
		{"collider", "parallel.tasks"},
		{"power", "power.trials"},
		{"chaos", "faults.drops"},
	} {
		if _, ok := m[want.scope][want.name]; !ok {
			t.Errorf("suite metrics missing %s/%s", want.scope, want.name)
		}
	}
	blob, err := json.Marshal(map[string]obs.Metrics{"metrics": m})
	if err != nil {
		t.Fatal(err)
	}
	var back struct {
		Metrics obs.Metrics `json:"metrics"`
	}
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Metrics.Render() != m.Render() {
		t.Fatal("metrics JSON round trip changed the rendered table")
	}
}

// runTable1Timed is the overhead probe: one default-config table1 run
// (the heaviest experiment) under the given context.
func runTable1Timed(t testing.TB, ctx context.Context) time.Duration {
	start := time.Now()
	if _, err := RunTable1(ctx, parallel.Pool{}, Table1Config{Seed: 42, WithTruth: true}); err != nil {
		t.Fatal(err)
	}
	return time.Since(start)
}

// TestRecorderOverheadGate bounds the observability layer's runtime cost on
// the full table1 pipeline. The uninstrumented build no longer exists to
// compare against, so the gate works from two measurable halves:
//
//   - obs.TestNilPathZeroAlloc pins the disabled path to zero allocations —
//     a context lookup per site is all that remains;
//   - here, the *enabled* path (live recorder, a strict superset of the
//     disabled path's work) must stay within 5% of the disabled path on
//     min-of-N wall time. If the disabled path ever grew real work, the
//     enabled path would exceed this bound a fortiori.
//
// Min-of-N with interleaved runs keeps the comparison stable on a loaded
// single-core CI box; a 75ms absolute floor absorbs scheduler jitter on a
// run this short.
func TestRecorderOverheadGate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate")
	}
	if raceEnabled {
		t.Skip("wall-clock gate is noise under race-detector instrumentation")
	}
	off, on := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < 3; i++ {
		if d := runTable1Timed(t, context.Background()); d < off {
			off = d
		}
		ctx := obs.With(context.Background(), obs.NewRecorder())
		if d := runTable1Timed(t, obs.Scoped(ctx, "table1")); d < on {
			on = d
		}
	}
	limit := off + off/20 + 75*time.Millisecond
	t.Logf("table1 min wall: recorder off %v, on %v (gate %v)", off, on, limit)
	if on > limit {
		t.Fatalf("tracing-enabled run %v exceeds 5%% gate over disabled run %v", on, off)
	}
}

// BenchmarkRecorderOverhead feeds the CHANGES.md before/after numbers: the
// full default table1 run with tracing off vs on.
func BenchmarkRecorderOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runTable1Timed(b, context.Background())
		}
	})
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx := obs.With(context.Background(), obs.NewRecorder())
			runTable1Timed(b, obs.Scoped(ctx, "table1"))
		}
	})
}
