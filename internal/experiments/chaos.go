package experiments

import (
	"context"
	"fmt"
	"math"

	"sisyphus/internal/causal/synthetic"
	"sisyphus/internal/faults"
	"sisyphus/internal/parallel"
	"sisyphus/internal/pipeline"
	"sisyphus/internal/probe"
)

// ChaosLevel is one point on the degradation curve: the Table 1 pipeline
// rerun with measurement faults injected at the given intensity.
type ChaosLevel struct {
	Intensity float64
	Faults    faults.Config

	// Coverage is delivered/scheduled across every stream in the run.
	Coverage float64
	// Scheduled/Delivered/Failed/Truncated/Duplicated break the ingestion
	// stream down; Scheduled == Delivered + Failed.
	Scheduled, Delivered, Failed, Truncated, Duplicated int

	// Estimated counts treated units that produced an estimate; Collapsed
	// counts units where the donor pool or fit gave out entirely.
	Estimated, Collapsed int
	// DroppedDonors is the total number of donor exclusions by the
	// missing-cell policy, summed over treated units.
	DroppedDonors int

	// MeanAbsError is the mean |estimated − true| RTT change over estimated
	// units — the degradation metric ground truth makes possible. NaN (no
	// estimable unit) marshals as JSON null.
	MeanAbsError NullableFloat
	// MeanPValue averages the placebo p-values over estimated units.
	MeanPValue NullableFloat
	// PValueShift is the mean |p − p₀| against the fault-free level — the
	// paper's inference (is the effect distinguishable from placebo noise?)
	// should be stable long after point estimates start drifting.
	PValueShift NullableFloat
	// MeanUnitCoverage averages per-treated-unit panel coverage.
	MeanUnitCoverage float64
}

// ChaosResult is the full fault-intensity sweep (E15). The ground-truth SCM
// is what lets us certify graceful degradation: the paper can rerun its
// pipeline on messy data, but only a simulator knows how wrong the answers
// became.
type ChaosResult struct {
	Seed   uint64
	Levels []ChaosLevel
}

// Render prints the degradation table.
func (r *ChaosResult) Render() string {
	t := &table{header: []string{
		"intensity", "coverage", "failed", "trunc", "dup", "dropped donors",
		"units est.", "mean |est-true| (ms)", "mean p", "p shift",
	}}
	nf := func(v NullableFloat, format string) string {
		if v.IsNaN() {
			return "-"
		}
		return fmt.Sprintf(format, float64(v))
	}
	for _, l := range r.Levels {
		t.add(
			fmt.Sprintf("%.2f", l.Intensity),
			fmt.Sprintf("%.3f", l.Coverage),
			fmt.Sprintf("%d", l.Failed),
			fmt.Sprintf("%d", l.Truncated),
			fmt.Sprintf("%d", l.Duplicated),
			fmt.Sprintf("%d", l.DroppedDonors),
			fmt.Sprintf("%d/%d", l.Estimated, l.Estimated+l.Collapsed),
			nf(l.MeanAbsError, "%.2f"),
			nf(l.MeanPValue, "%.3f"),
			nf(l.PValueShift, "%.3f"),
		)
	}
	return fmt.Sprintf(`Chaos sweep (E15): Table 1 estimator under injected measurement faults
(drop/truncate/skew/duplicate/reorder/outages scaled together; per-level
fault mix at intensity i: %s)

%s
Reading: estimate error should grow smoothly with intensity while coverage
reporting accounts for exactly the data the estimator lost — graceful
degradation, not silent bias. Units whose donor pool collapses are reported
as such instead of emitting a number.
`, faults.Scaled(0, 1).String(), t.String())
}

// chaosIntensities is the default fault grid E15 sweeps. The top level is
// deliberately brutal — the pipeline must report collapse there, not crash.
var chaosIntensities = []float64{0, 0.05, 0.1, 0.2, 0.4, 0.8}

// ChaosOptions parameterizes the E15 degradation sweep.
type ChaosOptions struct {
	// Weeks and JoinWeek shape the underlying Table 1 world at each level.
	Weeks, JoinWeek int
	// Intensities is the fault grid to sweep (default chaosIntensities).
	// The fault-free base level must come first: p-value shifts are measured
	// against the first level's placebo ranks.
	Intensities []float64
	// ScenarioChoice names the world every level runs on (default
	// scenario.SouthAfricaID). Like Table1Config it is identity, not
	// parameters: it selects which world artifact the levels share.
	ScenarioChoice
}

func (ChaosOptions) experimentOptions() {}

// WithScenario implements ScenarioOptions.
func (o ChaosOptions) WithScenario(id string) Options {
	o.Scenario = id
	return o
}

// chaosDefaults are the registered E15 options.
var chaosDefaults = ChaosOptions{Weeks: 4, JoinWeek: 2, Intensities: chaosIntensities}

// RunChaos sweeps fault intensity and reruns the Table 1 estimator at each
// level, comparing estimates against the simulator's ground truth. Each
// sweep level is a cancellation barrier (on top of the per-stage barriers
// inside the Table 1 pipeline it drives), so cancelling ctx abandons the
// sweep between levels with ctx.Err().
func RunChaos(ctx context.Context, pool parallel.Pool, seed uint64, o ChaosOptions) (*ChaosResult, error) {
	if len(o.Intensities) == 0 {
		o.Intensities = chaosIntensities
	}
	res := &ChaosResult{Seed: seed}
	var basePValues map[string]float64
	for _, intensity := range o.Intensities {
		if err := pipeline.Guard(ctx, fmt.Sprintf("chaos/level-%.2f", intensity)); err != nil {
			return nil, err
		}
		fc := faults.Scaled(seed+1000, intensity)
		cfg := Table1Config{
			Weeks: o.Weeks, JoinWeek: o.JoinWeek, Seed: seed, Method: synthetic.Robust,
			WithTruth: true, Faults: &fc,
			Retry:          probe.RetryPolicy{MaxAttempts: 2},
			ScenarioChoice: ScenarioChoice{Scenario: o.Scenario},
		}
		t1, err := RunTable1(ctx, pool, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos intensity %.2f: %w", intensity, err)
		}

		level := ChaosLevel{
			Intensity:  intensity,
			Faults:     fc,
			Coverage:   t1.Coverage.Fraction(),
			Scheduled:  t1.Coverage.Scheduled,
			Delivered:  t1.Coverage.Delivered,
			Failed:     t1.Coverage.Failed,
			Truncated:  t1.Coverage.Truncated,
			Duplicated: t1.Coverage.Duplicated,
		}
		var absErrSum, pSum, shiftSum, covSum float64
		var nErr, nP, nShift, nCov int
		pValues := make(map[string]float64)
		for _, row := range t1.Rows {
			if !row.Crossed {
				continue
			}
			level.DroppedDonors += len(row.DroppedDonors)
			covSum += row.Coverage
			nCov++
			if row.EstimateError != "" {
				level.Collapsed++
				continue
			}
			level.Estimated++
			if !row.TrueDelta.IsNaN() {
				absErrSum += math.Abs(row.RTTDelta - float64(row.TrueDelta))
				nErr++
			}
			pValues[row.Unit.String()] = row.PValue
			pSum += row.PValue
			nP++
			if basePValues != nil {
				if p0, ok := basePValues[row.Unit.String()]; ok {
					shiftSum += math.Abs(row.PValue - p0)
					nShift++
				}
			}
		}
		if basePValues == nil {
			basePValues = pValues
		}
		mean := func(sum float64, n int) NullableFloat {
			if n == 0 {
				return NullableFloat(math.NaN())
			}
			return NullableFloat(sum / float64(n))
		}
		level.MeanAbsError = mean(absErrSum, nErr)
		level.MeanPValue = mean(pSum, nP)
		level.PValueShift = mean(shiftSum, nShift)
		if nCov > 0 {
			level.MeanUnitCoverage = covSum / float64(nCov)
		}
		res.Levels = append(res.Levels, level)
	}
	return res, nil
}

func init() {
	register(Experiment{
		ID:       "chaos",
		Paper:    "E15: degradation curves — Table 1 estimator under injected measurement faults",
		Defaults: chaosDefaults,
		Run: func(ctx context.Context, cfg Config) (Renderable, error) {
			o, err := optionsOr(cfg, chaosDefaults)
			if err != nil {
				return nil, err
			}
			return RunChaos(ctx, cfg.Pool, cfg.Seed, o)
		},
	})
}
