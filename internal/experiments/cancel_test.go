package experiments

import (
	"context"
	"errors"
	"testing"
	"time"

	"sisyphus/internal/parallel"
)

// TestRunAllPreCancelled: a context that is already dead must short-circuit
// the whole suite — ctx.Err() back, no experiment ran, no outcome carries a
// result.
func TestRunAllPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	outs, err := RunAll(ctx, Config{Seed: 1, Pool: parallel.Pool{}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v want context.Canceled", err)
	}
	if len(outs) != len(All()) {
		t.Fatalf("outcomes = %d want %d (identity preserved even when nothing ran)", len(outs), len(All()))
	}
	for _, oc := range outs {
		if oc.Exp.ID == "" {
			t.Fatal("outcome lost its experiment identity")
		}
		if oc.Res != nil {
			t.Fatalf("%s produced a result under a pre-cancelled context", oc.Exp.ID)
		}
		if oc.Err != nil && !errors.Is(oc.Err, context.Canceled) {
			t.Fatalf("%s: err = %v want nil or context.Canceled", oc.Exp.ID, oc.Err)
		}
	}
}

// TestTable1PreCancelled: the pipeline's first stage boundary must reject a
// dead context before any simulation, probing, or platform-store write
// happens — nil result, ctx.Err() out.
func TestTable1PreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	res, err := RunTable1(ctx, parallel.Pool{}, experimentsTable1Config())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("got a partial result %+v from a pre-cancelled run", res)
	}
}

// TestEveryExperimentHonorsPreCancelledContext sweeps the registry: each
// experiment, run through the same entry point the CLI uses, must return
// ctx.Err() (possibly wrapped) and no result when the context is already
// cancelled.
func TestEveryExperimentHonorsPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, e := range All() {
		res, err := e.Run(ctx, Config{Seed: 1, Pool: parallel.Pool{}})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v want context.Canceled", e.ID, err)
		}
		if res != nil {
			t.Fatalf("%s returned a result under a pre-cancelled context", e.ID)
		}
	}
}

// TestRunAllTimeoutMidSuite: a deadline that expires while the suite is in
// flight must surface as DeadlineExceeded within a stage boundary, with
// every outcome either untouched (never scheduled) or carrying the context
// error — never a half-built result.
func TestRunAllTimeoutMidSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("starts real experiment work before the deadline fires")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()

	outs, err := RunAll(ctx, Config{Seed: 1, Pool: parallel.NewPool(2)})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v want context.DeadlineExceeded", err)
	}
	for _, oc := range outs {
		if oc.Res != nil {
			// An experiment that beat the deadline is fine; it must be whole.
			if oc.Res.Render() == "" {
				t.Fatalf("%s completed with an empty rendering", oc.Exp.ID)
			}
			continue
		}
		if oc.Err != nil && !errors.Is(oc.Err, context.DeadlineExceeded) && !errors.Is(oc.Err, context.Canceled) {
			t.Fatalf("%s: non-context error under timeout: %v", oc.Exp.ID, oc.Err)
		}
	}
}
