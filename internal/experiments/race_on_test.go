//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in; timing
// gates skip under its ~5-20x instrumentation overhead.
const raceEnabled = true
