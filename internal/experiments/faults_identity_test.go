package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"sisyphus/internal/faults"
	"sisyphus/internal/parallel"
	"sisyphus/internal/probe"
)

// TestFaultRateZeroBitIdentity is the property the whole faults layer is
// built around: running the full Table 1 pipeline with a zero-rate injector
// installed (hook consulted on every probe, records routed through Deliver,
// panels built through the masked path) must render byte-for-byte the same
// table as running with no injector at all.
func TestFaultRateZeroBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("two full E1 runs")
	}
	ctx := context.Background()
	plain := experimentsTable1Config()
	bare, err := RunTable1(ctx, parallel.Pool{}, plain)
	if err != nil {
		t.Fatal(err)
	}

	zeroed := plain
	zeroed.Faults = &faults.Config{Seed: 777} // every rate zero
	zeroed.Retry = probe.RetryPolicy{MaxAttempts: 4}
	hooked, err := RunTable1(ctx, parallel.Pool{}, zeroed)
	if err != nil {
		t.Fatal(err)
	}

	if a, b := bare.Render(), hooked.Render(); a != b {
		t.Fatalf("zero-rate injector changed the rendered table:\n--- no injector ---\n%s\n--- zero-rate ---\n%s", a, b)
	}
	if !reflect.DeepEqual(bare.Rows, hooked.Rows) {
		t.Fatal("zero-rate injector changed Table 1 rows")
	}
	if !reflect.DeepEqual(bare.Coverage, hooked.Coverage) {
		t.Fatalf("coverage counters differ: %+v vs %+v", bare.Coverage, hooked.Coverage)
	}
}

// TestChaosSweepDegradesGracefully is E15's smoke test on a reduced grid:
// faults must show up in the coverage accounting, and the pipeline must
// produce a row — never an error — at every intensity.
func TestChaosSweepDegradesGracefully(t *testing.T) {
	if testing.Short() {
		t.Skip("reruns Table 1 per intensity level")
	}
	o := chaosDefaults
	o.Intensities = []float64{0, 0.4}
	res, err := RunChaos(context.Background(), parallel.Pool{}, 11, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 2 {
		t.Fatalf("levels = %d", len(res.Levels))
	}
	clean, faulty := res.Levels[0], res.Levels[1]
	if clean.Coverage != 1 || clean.Failed != 0 || clean.Truncated != 0 || clean.Duplicated != 0 {
		t.Fatalf("fault-free level shows faults: %+v", clean)
	}
	if clean.Estimated == 0 {
		t.Fatal("fault-free level estimated nothing")
	}
	if faulty.Coverage >= clean.Coverage {
		t.Fatalf("coverage did not degrade: %v -> %v", clean.Coverage, faulty.Coverage)
	}
	if faulty.Failed == 0 || faulty.Truncated == 0 {
		t.Fatalf("intensity 0.4 injected no faults: %+v", faulty)
	}
	if faulty.Scheduled != faulty.Delivered+faulty.Failed {
		t.Fatalf("coverage identity broken: %+v", faulty)
	}
	if faulty.Estimated+faulty.Collapsed == 0 {
		t.Fatal("no units accounted for at intensity 0.4")
	}
	// The render must succeed and mention every intensity.
	out := res.Render()
	if !bytes.Contains([]byte(out), []byte("0.40")) {
		t.Fatalf("render missing intensity row:\n%s", out)
	}
}

func TestNullableFloatJSON(t *testing.T) {
	cases := []struct {
		name string
		v    float64
		want string
	}{
		{"finite", 3.25, "3.25"},
		{"zero", 0, "0"},
		{"negative", -1.5, "-1.5"},
		{"nan", math.NaN(), "null"},
		{"+inf", math.Inf(1), "null"},
		{"-inf", math.Inf(-1), "null"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b, err := json.Marshal(NullableFloat(c.v))
			if err != nil {
				t.Fatal(err)
			}
			if string(b) != c.want {
				t.Fatalf("marshal(%v) = %s, want %s", c.v, b, c.want)
			}
			var back NullableFloat
			if err := json.Unmarshal(b, &back); err != nil {
				t.Fatal(err)
			}
			if c.want == "null" {
				if !back.IsNaN() {
					t.Fatalf("null did not round-trip to NaN: %v", back)
				}
			} else if float64(back) != c.v {
				t.Fatalf("round-trip %v -> %v", c.v, back)
			}
		})
	}
}

// TestRootCauseJSONRegression pins the seed bug this PR fixes: rootcause (and
// any experiment with NaN-able fields) must marshal successfully — NaN cells
// become JSON null — instead of failing the whole -all -json run.
func TestRootCauseJSONRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("full rootcause run")
	}
	e, err := Get("rootcause")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("rootcause result does not marshal: %v", err)
	}
	var decoded any
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("rootcause JSON does not parse back: %v", err)
	}
}

// TestTable1JSONWithTruth covers the second NaN field (TrueDelta is NaN for
// units that never cross the IXP) plus the func-valued Build field, both of
// which used to sink `-all -json`.
func TestTable1JSONWithTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("full E1 run")
	}
	cfg := experimentsTable1Config()
	cfg.WithTruth = true
	res, err := RunTable1(context.Background(), parallel.Pool{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("Table 1 result does not marshal: %v", err)
	}
	if bytes.Contains(b, []byte("NaN")) {
		t.Fatal("raw NaN leaked into JSON output")
	}
}
