package experiments

import (
	"context"
	"fmt"

	"sisyphus/internal/mathx"
	"sisyphus/internal/netsim/engine"
	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/netsim/traffic"
	"sisyphus/internal/parallel"
)

// RootCauseResult reproduces the paper's §1 motivation (the Facebook and
// Rogers outages): when several things change at once, surface symptoms
// point at the wrong layer. Here an access-side congestion surge (the red
// herring every dashboard shows) coincides with a content-side link failure
// (the actual cause of unreachability). Correlation-based triage ranks the
// louder signal first; counterfactual replay — removing one candidate cause
// at a time from the otherwise-identical world — attributes the outage
// correctly.
type RootCauseResult struct {
	OutageHour float64
	// SymptomUnreachable is the number of units that lost the content
	// during the incident window in the factual world.
	SymptomUnreachable int
	// MedianRTTBefore/During for reachable units (the noisy symptom).
	// During is NaN — JSON null — when nothing was reachable at all.
	MedianRTTBefore, MedianRTTDuring NullableFloat
	// CorrCongestion is the correlation between per-hour unreachability
	// count and access-side congestion — the misleading surface signal.
	// NaN (zero variance in either series) marshals as JSON null.
	CorrCongestion NullableFloat
	// Candidate verdicts: unreachable counts when each candidate cause is
	// counterfactually removed.
	WithoutCongestion int
	WithoutLinkCut    int
}

// Render prints the postmortem.
func (r *RootCauseResult) Render() string {
	t := &table{header: []string{"world", "units unreachable during incident"}}
	t.add("factual (both events)", fmt.Sprintf("%d", r.SymptomUnreachable))
	t.add("counterfactual: no congestion surge", fmt.Sprintf("%d", r.WithoutCongestion))
	t.add("counterfactual: no link failure", fmt.Sprintf("%d", r.WithoutLinkCut))
	during := fmt.Sprintf("%.1f ms", r.MedianRTTDuring)
	if r.MedianRTTDuring.IsNaN() {
		during = "(nothing reachable)"
	}
	return fmt.Sprintf(`Root-cause postmortem (§1 motivation): symptoms vs causes
(incident at hour %.0f; median RTT %.1f ms → %s among reachable units;
corr(unreachability, access congestion) = %+.2f — the misleading signal)

%s
Verdict: removing the congestion surge leaves the outage intact; removing
the link failure eliminates it. The cause is the link, not the congestion —
exactly the distinction correlation alone could not draw.
`, r.OutageHour, r.MedianRTTBefore, during, r.CorrCongestion, t.String())
}

// RootCauseOptions parameterizes the postmortem: just the world to run on.
// The incident's surge links and cut providers come from the world's outage
// cast.
type RootCauseOptions struct {
	ScenarioChoice
}

func (RootCauseOptions) experimentOptions() {}

// WithScenario implements ScenarioOptions.
func (o RootCauseOptions) WithScenario(id string) Options {
	o.Scenario = id
	return o
}

// RunRootCause builds the two-fault world and performs the counterfactual
// attribution. The world comes from o.Scenario (default the South Africa
// world) and must cast an outage (scenario.OutageCast).
func RunRootCause(ctx context.Context, pool parallel.Pool, seed uint64, o RootCauseOptions) (*RootCauseResult, error) {
	const horizon = 120.0
	const outageHour = 60.0
	const windowEnd = 90.0
	scenarioID := scenarioOr(o.Scenario)

	type worldOut struct {
		unreachPerHour []float64
		congPerHour    []float64
		rttBefore      []float64
		rttDuring      []float64
		totalUnreach   int
	}
	run := func(withCongestion, withCut bool) (*worldOut, error) {
		s, rib, err := fetchWorld(ctx, pool, scenarioID)
		if err != nil {
			return nil, err
		}
		cast, err := s.RequireOutage()
		if err != nil {
			return nil, fmt.Errorf("experiments: world %q: %w", scenarioID, err)
		}
		content := s.MeasureDst()
		e := engine.New(s.Topo, seed, engine.Config{Pool: pool, InitialRIB: rib}).Bind(ctx)
		rel, err := s.Topo.Relationships()
		if err != nil {
			return nil, err
		}
		surge := make([]topo.LinkID, 0, len(cast.Surge))
		for _, ref := range cast.Surge {
			id, err := ref.Resolve(rel)
			if err != nil {
				return nil, fmt.Errorf("experiments: world %q: surge link: %w", scenarioID, err)
			}
			surge = append(surge, id)
		}
		if withCongestion {
			// The red herring: a demand surge on the cast interconnects, loud
			// on every utilization dashboard.
			for _, id := range surge {
				e.Traffic.AddFlashCrowd(traffic.FlashCrowd{
					Link: id, StartHour: outageHour - 2, Hours: windowEnd - outageHour + 6, Magnitude: 0.4,
				})
			}
		}
		if withCut {
			// The actual cause: a configuration push withdraws every one of
			// the content network's transit uplinks at once — the
			// Facebook-style total disappearance. (Its IXP peerings at this
			// point connect only to other content networks, so they provide
			// no transit.)
			var cut []topo.LinkID
			for _, p := range cast.CutProviders {
				cut = append(cut, rel.Links[content][p]...)
			}
			for _, id := range cut {
				e.Schedule(engine.EvLinkDown(outageHour, id))
				e.Schedule(engine.EvLinkUp(windowEnd, id))
			}
		}
		out := &worldOut{}
		congLink := surge[0]
		for e.Hour() < horizon {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := e.Step(); err != nil {
				return nil, err
			}
			unreach := 0
			var rtts []float64
			for _, u := range s.AllUnits() {
				src, err := s.UserPoP(u)
				if err != nil {
					return nil, err
				}
				perf, err := e.PerfToAS(src, content)
				if err != nil {
					unreach++
					continue
				}
				rtts = append(rtts, perf.RTTms)
			}
			out.unreachPerHour = append(out.unreachPerHour, float64(unreach))
			out.congPerHour = append(out.congPerHour, e.Utilization(congLink))
			if e.Hour() >= outageHour && e.Hour() < windowEnd {
				out.totalUnreach += unreach
				if len(rtts) > 0 {
					out.rttDuring = append(out.rttDuring, mathx.Median(rtts))
				}
			} else if e.Hour() < outageHour {
				out.rttBefore = append(out.rttBefore, mathx.Median(rtts))
			}
		}
		return out, nil
	}

	res := &RootCauseResult{OutageHour: outageHour}
	var factual, noCong, noCut *worldOut
	err := stagedRun(ctx, "rootcause", func(ctx context.Context) error {
		// Factual world plus the two single-candidate-removed replays.
		var err error
		if factual, err = run(true, true); err != nil {
			return err
		}
		if noCong, err = run(false, true); err != nil {
			return err
		}
		noCut, err = run(true, false)
		return err
	}, nil, func(ctx context.Context) error {
		res.SymptomUnreachable = int(mathx.Vector(factual.unreachPerHour).Max())
		res.MedianRTTBefore = NullableFloat(mathx.Median(factual.rttBefore))
		res.MedianRTTDuring = NullableFloat(mathx.Median(factual.rttDuring))
		res.CorrCongestion = NullableFloat(mathx.Correlation(factual.unreachPerHour, factual.congPerHour))
		res.WithoutCongestion = int(mathx.Vector(noCong.unreachPerHour).Max())
		res.WithoutLinkCut = int(mathx.Vector(noCut.unreachPerHour).Max())
		return nil
	}, nil)
	if err != nil {
		return nil, err
	}
	return res, nil
}

func init() {
	defaults := RootCauseOptions{}
	register(Experiment{
		ID:       "rootcause",
		Paper:    "§1 motivation: surface symptoms vs root causes (Facebook/Rogers)",
		Defaults: defaults,
		Run: func(ctx context.Context, cfg Config) (Renderable, error) {
			o, err := optionsOr(cfg, defaults)
			if err != nil {
				return nil, err
			}
			return RunRootCause(ctx, cfg.Pool, cfg.Seed, o)
		},
	})
}
