package experiments

import (
	"encoding/json"
	"math"
)

// NullableFloat is a float64 whose JSON form is null when the value is NaN
// or ±Inf. encoding/json refuses non-finite floats outright, which made
// `sisyphus -all -json` exit 1 whenever a result legitimately carried "no
// value" (e.g. the root-cause postmortem's median RTT while nothing is
// reachable, or a Table 1 true-Δ with no counterfactual samples). Result
// structs use this type for any field that can be non-finite; finite values
// marshal exactly like plain float64, so JSON output is unchanged where it
// previously worked.
type NullableFloat float64

// IsNaN reports whether the value is NaN.
func (f NullableFloat) IsNaN() bool { return math.IsNaN(float64(f)) }

// MarshalJSON encodes non-finite values as null.
func (f NullableFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON decodes null back to NaN, round-tripping the marshaler.
func (f *NullableFloat) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = NullableFloat(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = NullableFloat(v)
	return nil
}
