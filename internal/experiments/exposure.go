package experiments

import (
	"context"
	"fmt"
	"sort"

	"sisyphus/internal/netsim/bgp"
	"sisyphus/internal/netsim/engine"
	"sisyphus/internal/netsim/scenario"
	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/parallel"
)

// ExposureRow summarizes one candidate failure.
type ExposureRow struct {
	Link string
	// Exposure is the static count of unit→content pairs whose current
	// path crosses the link (what Xaminer-style analysis reports).
	Exposure int
	// Unreachable is how many pairs actually lose connectivity after BGP
	// reconverges around the failure.
	Unreachable int
	// MeanRTTShift is the average RTT change (ms) among pairs that remain
	// reachable (the *impact* after adaptation).
	MeanRTTShift float64
}

// ExposureResult reproduces the §3 Xaminer box: exposure (who crosses the
// failed component) is not impact (what happens after routing adapts).
type ExposureResult struct {
	Pairs int
	Rows  []ExposureRow
	// RankFlips counts link pairs ordered differently by exposure vs by
	// impact — the quantitative sense in which "exposure ≠ impact".
	RankFlips int
}

// Render prints the sweep.
func (r *ExposureResult) Render() string {
	t := &table{header: []string{"failed link", "exposure (paths)", "unreachable after reconvergence", "mean RTT shift (ms)"}}
	for _, row := range r.Rows {
		t.add(row.Link, fmt.Sprintf("%d", row.Exposure), fmt.Sprintf("%d", row.Unreachable),
			fmt.Sprintf("%+.2f", row.MeanRTTShift))
	}
	return fmt.Sprintf("Exposure vs impact (§3 Xaminer box): cable-cut sweep over %d unit→content pairs\n(%d link pairs rank differently under exposure vs impact)\n\n%s",
		r.Pairs, r.RankFlips, t.String())
}

// RunExposure sweeps candidate link failures in the South Africa world.
// For each: static exposure = paths crossing the link now; dynamic impact =
// reachability and RTT after the control plane reconverges without it.
func RunExposure(ctx context.Context, pool parallel.Pool, seed uint64) (*ExposureResult, error) {
	type pair struct {
		src topo.PoPID
		u   scenario.Unit
	}
	type candidate struct {
		name string
		id   topo.LinkID
	}
	res := &ExposureResult{}
	var s *scenario.World
	var e *engine.Engine
	var pairs []pair
	var candidates []candidate
	paths := make(map[topo.PoPID]*bgp.Path)
	baseRTT := make(map[topo.PoPID]float64)
	err := stagedRun(ctx, "exposure", func(ctx context.Context) error {
		s2, rib, err := fetchWorld(ctx, pool, scenario.SouthAfricaID)
		if err != nil {
			return err
		}
		s = s2
		e = engine.New(s.Topo, seed, engine.Config{Pool: pool, InitialRIB: rib}).Bind(ctx)
		if err := e.RunUntil(12); err != nil {
			return err
		}
		// Materialize the converged RIB before the static snapshot, exactly
		// as an exposure analysis would.
		_, err = e.RIB()
		return err
	}, func(ctx context.Context) error {
		// The measurement pairs: every unit to BigContent, with their
		// pre-failure paths and RTTs — the static view exposure analysis has.
		for _, u := range s.AllUnits() {
			src, err := s.UserPoP(u)
			if err != nil {
				return err
			}
			pairs = append(pairs, pair{src, u})
		}
		for _, p := range pairs {
			perf, err := e.PerfToAS(p.src, scenario.BigContent)
			if err != nil {
				return err
			}
			paths[p.src] = perf.Path
			baseRTT[p.src] = perf.RTTms
		}
		// Candidate failures: the backbone-facing and inter-transit links.
		rel, err := s.Topo.Relationships()
		if err != nil {
			return err
		}
		candidates = []candidate{
			{"TransitA–Backbone (JNB)", rel.Links[scenario.ZATransitA][scenario.EuroBackbone][0]},
			{"TransitB–Backbone (JNB)", rel.Links[scenario.ZATransitB][scenario.EuroBackbone][0]},
			{"TransitA–TransitB peering", rel.Links[scenario.ZATransitA][scenario.ZATransitB][0]},
			{"BigContent–TransitA (JNB)", rel.Links[scenario.BigContent][scenario.ZATransitA][0]},
			{"BigContent–TransitA (DUR)", rel.Links[scenario.BigContent][scenario.ZATransitA][1]},
			// Single-homed access tails: tiny exposure, total impact.
			{"Donor16637 access", rel.Links[16637][scenario.ZATransitA][0]},
			{"Donor327700 access", rel.Links[327700][scenario.ZATransitB][0]},
		}
		res.Pairs = len(pairs)
		return nil
	}, func(ctx context.Context) error {
		for _, cand := range candidates {
			// Each candidate failure forces a full reconvergence; check
			// between them so cancellation lands within one sweep entry.
			if err := ctx.Err(); err != nil {
				return err
			}
			row := ExposureRow{Link: cand.name}
			for _, p := range pairs {
				if paths[p.src].CrossesLink(cand.id) {
					row.Exposure++
				}
			}
			// Fail the link, recompute, and measure actual impact.
			e.Policy.DenyLink[cand.id] = true
			e.MarkDirty()
			var shiftSum float64
			var shiftN int
			for _, p := range pairs {
				perf, err := e.PerfToAS(p.src, scenario.BigContent)
				if err != nil {
					row.Unreachable++
					continue
				}
				shiftSum += perf.RTTms - baseRTT[p.src]
				shiftN++
			}
			if shiftN > 0 {
				row.MeanRTTShift = shiftSum / float64(shiftN)
			}
			delete(e.Policy.DenyLink, cand.id)
			e.MarkDirty()
			res.Rows = append(res.Rows, row)
		}
		return nil
	}, func(ctx context.Context) error {
		// Count rank inversions between the exposure ordering and an impact
		// ordering (unreachable count, then RTT shift).
		impactLess := func(a, b ExposureRow) bool {
			if a.Unreachable != b.Unreachable {
				return a.Unreachable < b.Unreachable
			}
			return a.MeanRTTShift < b.MeanRTTShift
		}
		for i := 0; i < len(res.Rows); i++ {
			for j := i + 1; j < len(res.Rows); j++ {
				a, b := res.Rows[i], res.Rows[j]
				expLess := a.Exposure < b.Exposure
				if a.Exposure != b.Exposure && expLess != impactLess(a, b) {
					res.RankFlips++
				}
			}
		}
		sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].Exposure > res.Rows[j].Exposure })
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func init() {
	register(Experiment{
		ID:    "exposure",
		Paper: "§3 Xaminer box: static exposure vs post-reconvergence impact",
		Run: func(ctx context.Context, cfg Config) (Renderable, error) {
			if err := noOptions("exposure", cfg); err != nil {
				return nil, err
			}
			return RunExposure(ctx, cfg.Pool, cfg.Seed)
		},
	})
}
