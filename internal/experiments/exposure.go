package experiments

import (
	"context"
	"fmt"
	"sort"

	"sisyphus/internal/netsim/bgp"
	"sisyphus/internal/netsim/engine"
	"sisyphus/internal/netsim/scenario"
	"sisyphus/internal/netsim/topo"
	"sisyphus/internal/parallel"
)

// ExposureRow summarizes one candidate failure.
type ExposureRow struct {
	Link string
	// Exposure is the static count of unit→content pairs whose current
	// path crosses the link (what Xaminer-style analysis reports).
	Exposure int
	// Unreachable is how many pairs actually lose connectivity after BGP
	// reconverges around the failure.
	Unreachable int
	// MeanRTTShift is the average RTT change (ms) among pairs that remain
	// reachable (the *impact* after adaptation).
	MeanRTTShift float64
}

// ExposureResult reproduces the §3 Xaminer box: exposure (who crosses the
// failed component) is not impact (what happens after routing adapts).
type ExposureResult struct {
	Pairs int
	Rows  []ExposureRow
	// RankFlips counts link pairs ordered differently by exposure vs by
	// impact — the quantitative sense in which "exposure ≠ impact".
	RankFlips int
}

// Render prints the sweep.
func (r *ExposureResult) Render() string {
	t := &table{header: []string{"failed link", "exposure (paths)", "unreachable after reconvergence", "mean RTT shift (ms)"}}
	for _, row := range r.Rows {
		t.add(row.Link, fmt.Sprintf("%d", row.Exposure), fmt.Sprintf("%d", row.Unreachable),
			fmt.Sprintf("%+.2f", row.MeanRTTShift))
	}
	return fmt.Sprintf("Exposure vs impact (§3 Xaminer box): cable-cut sweep over %d unit→content pairs\n(%d link pairs rank differently under exposure vs impact)\n\n%s",
		r.Pairs, r.RankFlips, t.String())
}

// ExposureOptions parameterizes the cable-cut sweep: just the world to run
// on. The candidate failures come from the world's failure-candidate cast.
type ExposureOptions struct {
	ScenarioChoice
}

func (ExposureOptions) experimentOptions() {}

// WithScenario implements ScenarioOptions.
func (o ExposureOptions) WithScenario(id string) Options {
	o.Scenario = id
	return o
}

// RunExposure sweeps the world's cast candidate link failures. For each:
// static exposure = paths crossing the link now; dynamic impact =
// reachability and RTT after the control plane reconverges without it. The
// world comes from o.Scenario (default the South Africa world) and must
// cast at least two failure candidates.
func RunExposure(ctx context.Context, pool parallel.Pool, seed uint64, o ExposureOptions) (*ExposureResult, error) {
	type pair struct {
		src topo.PoPID
		u   scenario.Unit
	}
	type candidate struct {
		name string
		id   topo.LinkID
	}
	scenarioID := scenarioOr(o.Scenario)
	res := &ExposureResult{}
	var s *scenario.World
	var e *engine.Engine
	var dst topo.ASN
	var pairs []pair
	var candidates []candidate
	paths := make(map[topo.PoPID]*bgp.Path)
	baseRTT := make(map[topo.PoPID]float64)
	err := stagedRun(ctx, "exposure", func(ctx context.Context) error {
		s2, rib, err := fetchWorld(ctx, pool, scenarioID)
		if err != nil {
			return err
		}
		s = s2
		if _, err := s.RequireFailureCandidates(); err != nil {
			return fmt.Errorf("experiments: world %q: %w", scenarioID, err)
		}
		dst = s.MeasureDst()
		e = engine.New(s.Topo, seed, engine.Config{Pool: pool, InitialRIB: rib}).Bind(ctx)
		if err := e.RunUntil(12); err != nil {
			return err
		}
		// Materialize the converged RIB before the static snapshot, exactly
		// as an exposure analysis would.
		_, err = e.RIB()
		return err
	}, func(ctx context.Context) error {
		// The measurement pairs: every unit to the content target, with their
		// pre-failure paths and RTTs — the static view exposure analysis has.
		for _, u := range s.AllUnits() {
			src, err := s.UserPoP(u)
			if err != nil {
				return err
			}
			pairs = append(pairs, pair{src, u})
		}
		for _, p := range pairs {
			perf, err := e.PerfToAS(p.src, dst)
			if err != nil {
				return err
			}
			paths[p.src] = perf.Path
			baseRTT[p.src] = perf.RTTms
		}
		// Candidate failures: the world's cast list, resolved to link ids.
		rel, err := s.Topo.Relationships()
		if err != nil {
			return err
		}
		fcs, err := s.RequireFailureCandidates()
		if err != nil {
			return fmt.Errorf("experiments: world %q: %w", scenarioID, err)
		}
		for _, fc := range fcs {
			id, err := fc.Link.Resolve(rel)
			if err != nil {
				return fmt.Errorf("experiments: world %q: candidate %q: %w", scenarioID, fc.Name, err)
			}
			candidates = append(candidates, candidate{fc.Name, id})
		}
		res.Pairs = len(pairs)
		return nil
	}, func(ctx context.Context) error {
		for _, cand := range candidates {
			// Each candidate failure forces a full reconvergence; check
			// between them so cancellation lands within one sweep entry.
			if err := ctx.Err(); err != nil {
				return err
			}
			row := ExposureRow{Link: cand.name}
			for _, p := range pairs {
				if paths[p.src].CrossesLink(cand.id) {
					row.Exposure++
				}
			}
			// Fail the link, recompute, and measure actual impact.
			e.Policy.DenyLink[cand.id] = true
			e.MarkDirty()
			var shiftSum float64
			var shiftN int
			for _, p := range pairs {
				perf, err := e.PerfToAS(p.src, dst)
				if err != nil {
					row.Unreachable++
					continue
				}
				shiftSum += perf.RTTms - baseRTT[p.src]
				shiftN++
			}
			if shiftN > 0 {
				row.MeanRTTShift = shiftSum / float64(shiftN)
			}
			delete(e.Policy.DenyLink, cand.id)
			e.MarkDirty()
			res.Rows = append(res.Rows, row)
		}
		return nil
	}, func(ctx context.Context) error {
		// Count rank inversions between the exposure ordering and an impact
		// ordering (unreachable count, then RTT shift).
		impactLess := func(a, b ExposureRow) bool {
			if a.Unreachable != b.Unreachable {
				return a.Unreachable < b.Unreachable
			}
			return a.MeanRTTShift < b.MeanRTTShift
		}
		for i := 0; i < len(res.Rows); i++ {
			for j := i + 1; j < len(res.Rows); j++ {
				a, b := res.Rows[i], res.Rows[j]
				expLess := a.Exposure < b.Exposure
				if a.Exposure != b.Exposure && expLess != impactLess(a, b) {
					res.RankFlips++
				}
			}
		}
		sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].Exposure > res.Rows[j].Exposure })
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func init() {
	defaults := ExposureOptions{}
	register(Experiment{
		ID:       "exposure",
		Paper:    "§3 Xaminer box: static exposure vs post-reconvergence impact",
		Defaults: defaults,
		Run: func(ctx context.Context, cfg Config) (Renderable, error) {
			o, err := optionsOr(cfg, defaults)
			if err != nil {
				return nil, err
			}
			return RunExposure(ctx, cfg.Pool, cfg.Seed, o)
		},
	})
}
