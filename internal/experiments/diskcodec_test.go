package experiments

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"

	"sisyphus/internal/artifact"
	"sisyphus/internal/causal/synthetic"
	"sisyphus/internal/netsim/bgp"
	"sisyphus/internal/netsim/scenario"
	"sisyphus/internal/parallel"
)

// encodeAgain re-encodes a decoded artifact and requires byte identity with
// the original encoding — the codec-level determinism the envelope's
// content-addressed checksum depends on.
func encodeAgain(t *testing.T, name string, orig []byte, enc func() ([]byte, error)) {
	t.Helper()
	again, err := enc()
	if err != nil {
		t.Fatalf("%s: re-encode: %v", name, err)
	}
	if !bytes.Equal(orig, again) {
		t.Fatalf("%s: decode→encode is not byte-identical (%d vs %d bytes)", name, len(orig), len(again))
	}
}

// TestWorldArtifactRoundTrip: every registered scenario must survive
// encode→decode with a structurally identical export and byte-identical
// re-encoding.
func TestWorldArtifactRoundTrip(t *testing.T) {
	for _, id := range scenario.IDs() {
		w, err := scenario.Build(id)
		if err != nil {
			t.Fatal(err)
		}
		data, err := EncodeWorldArtifact(w)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeWorldArtifact(data)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !reflect.DeepEqual(w.Export(), back.Export()) {
			t.Fatalf("%s: world export drifted through the codec", id)
		}
		encodeAgain(t, id, data, func() ([]byte, error) { return EncodeWorldArtifact(back) })
	}
}

// TestWorldArtifactRejectsGarbage: arbitrary bytes must error, never panic,
// never yield a half-valid world.
func TestWorldArtifactRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, []byte("x"), bytes.Repeat([]byte{0xFF}, 512)} {
		if w, err := DecodeWorldArtifact(b); err == nil || w != nil {
			t.Fatalf("garbage decoded to %v, err %v", w, err)
		}
	}
	if _, _, err := DecodeCampaignArtifact([]byte("nope")); err == nil {
		t.Fatal("campaign garbage accepted")
	}
}

// TestRIBArtifactRoundTrip: the converged empty-policy RIB round-trips,
// rebound onto a fresh world, with identical routing answers and identical
// re-encoded bytes.
func TestRIBArtifactRoundTrip(t *testing.T) {
	pool := parallel.Pool{}
	w, err := scenario.Build(scenario.SouthAfricaID)
	if err != nil {
		t.Fatal(err)
	}
	rib, err := bgp.Compute(context.Background(), pool, w.Topo, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeRIBArtifact(rib)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := scenario.Build(scenario.SouthAfricaID)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRIBArtifact(data, w2.Topo, pool)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rib.Export(), back.Export()) {
		t.Fatal("RIB export drifted through the codec")
	}
	encodeAgain(t, "rib", data, func() ([]byte, error) { return EncodeRIBArtifact(back) })
}

// TestCampaignArtifactRoundTrip: a short simulated campaign — world with
// joins applied plus every delivered measurement — survives the codec.
func TestCampaignArtifactRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a one-week campaign")
	}
	p := campaignParams{Weeks: 1, JoinWeek: 0, UserRate: 0.25, Join: true}
	c, err := runCampaign(context.Background(), parallel.Pool{}, scenario.SouthAfricaID, 42, p)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeCampaignArtifact(c.world, c.store)
	if err != nil {
		t.Fatal(err)
	}
	w, st, err := DecodeCampaignArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.world.Export(), w.Export()) {
		t.Fatal("campaign world drifted through the codec")
	}
	if st.Len() != c.store.Len() {
		t.Fatalf("measurement count drifted: %d vs %d", st.Len(), c.store.Len())
	}
	if !reflect.DeepEqual(c.store.ExportMeasurements(), st.ExportMeasurements()) {
		t.Fatal("measurements drifted through the codec")
	}
	if c.store.TotalCoverage() != st.TotalCoverage() {
		t.Fatal("rebuilt coverage index disagrees with the original")
	}
	encodeAgain(t, "campaign", data, func() ([]byte, error) { return EncodeCampaignArtifact(w, st) })
}

// diskStore builds a Store over a fresh Disk on dir with a pinned
// fingerprint, standing in for one process of a fleet.
func diskStore(t *testing.T, dir string) *artifact.Store {
	t.Helper()
	d, err := artifact.OpenDisk(artifact.DiskConfig{Dir: dir, Fingerprint: "test-fp", Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return artifact.NewStore(artifact.WithDisk(d))
}

// TestTable1DiskTierEquivalence is the fetch-level acceptance criterion: a
// real experiment run uncached, cold through a cache dir, and warm from that
// dir (a fresh store, so everything it serves crossed the disk) must produce
// deeply equal results and identical rendered bytes — and the warm run must
// build nothing.
func TestTable1DiskTierEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates two-week campaigns")
	}
	cfg := Table1Config{Weeks: 2, JoinWeek: 1, Seed: 9, Method: synthetic.Robust}
	pool := parallel.Pool{}
	dir := t.TempDir()

	base, err := RunTable1(context.Background(), pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cold := diskStore(t, dir)
	coldRes, err := RunTable1(artifact.With(context.Background(), cold), pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm := diskStore(t, dir)
	warmRes, err := RunTable1(artifact.With(context.Background(), warm), pool, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(base, coldRes) || base.Render() != coldRes.Render() {
		t.Fatal("cold write-through run drifted from the uncached run")
	}
	if !reflect.DeepEqual(base, warmRes) || base.Render() != warmRes.Render() {
		t.Fatal("warm disk-served run drifted from the uncached run")
	}
	if st := cold.Stats(); st.DiskWrites == 0 || st.DiskHits != 0 {
		t.Fatalf("cold stats = %+v, want write-through and no hits", st)
	}
	if st := warm.Stats(); st.Builds != 0 || st.DiskHits == 0 {
		t.Fatalf("warm stats = %+v, want zero builds and only disk hits", st)
	}
}

// TestTable1DiskCorruptionEquivalence corrupts every cached artifact file
// and requires the next run to notice, rebuild, and still produce the exact
// uncached results — the tier's corruption-tolerance promise at experiment
// level.
func TestTable1DiskCorruptionEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates two-week campaigns")
	}
	cfg := Table1Config{Weeks: 2, JoinWeek: 1, Seed: 9, Method: synthetic.Robust}
	pool := parallel.Pool{}
	dir := t.TempDir()

	base, err := RunTable1(artifact.With(context.Background(), diskStore(t, dir)), pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".art") {
			continue
		}
		p := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xFF
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	if corrupted == 0 {
		t.Fatal("cold run left no artifact files to corrupt")
	}

	s := diskStore(t, dir)
	res, err := RunTable1(artifact.With(context.Background(), s), pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, res) || base.Render() != res.Render() {
		t.Fatal("corrupted cache dir changed experiment results")
	}
	st := s.Stats()
	if st.DiskCorrupt == 0 || st.DiskHits != 0 {
		t.Fatalf("stats = %+v, want corruption detected on every probe and no hits", st)
	}
	if st.DiskWrites == 0 {
		t.Fatalf("stats = %+v, want rebuilt artifacts written back", st)
	}
}

// TestTable1DiskWriteFaultEquivalence: a cache volume that cannot persist
// anything (ENOSPC at every fsync) must degrade to exactly the uncached
// behavior — same results, write errors counted, nothing on disk.
func TestTable1DiskWriteFaultEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates two-week campaigns")
	}
	cfg := Table1Config{Weeks: 2, JoinWeek: 1, Seed: 9, Method: synthetic.Robust}
	pool := parallel.Pool{}
	dir := t.TempDir()

	base, err := RunTable1(context.Background(), pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ffs := artifact.NewFaultFS(nil)
	ffs.FailSync(syscall.ENOSPC)
	d, err := artifact.OpenDisk(artifact.DiskConfig{Dir: dir, Fingerprint: "test-fp", FS: ffs, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	s := artifact.NewStore(artifact.WithDisk(d))
	res, err := RunTable1(artifact.With(context.Background(), s), pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, res) || base.Render() != res.Render() {
		t.Fatal("failing cache volume changed experiment results")
	}
	st := s.Stats()
	if st.DiskWriteErrors == 0 || st.DiskWrites != 0 {
		t.Fatalf("stats = %+v, want only write errors", st)
	}
	for _, e := range mustReadDir(t, dir) {
		if strings.HasSuffix(e.Name(), ".art") {
			t.Fatalf("artifact persisted through a failing volume: %s", e.Name())
		}
	}
}

func mustReadDir(t *testing.T, dir string) []os.DirEntry {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return entries
}
